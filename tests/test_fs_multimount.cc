// Multi-mount decentralization tests: several FileSystem instances attached
// to ONE nvmm+shm device pair, standing in for the paper's N independent
// processes mounting one NVMM region with no server (§4).  Covers the mount
// registry (first-in recovery / last-out clean marking), cross-mount
// namespace and data coherence, the superblock cache generation, shared
// allocator state (reservations + free-object stack), and a kill-one-mount
// storm with lease-based reclaim by the survivor.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/check.h"
#include "core/fs.h"

namespace simurgh::testing {
namespace {

using core::kOpenCreate;
using core::kOpenRead;
using core::kOpenWrite;

class MultiMountTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNvmmSize = 256ull << 20;
  static constexpr std::size_t kShmSize = 16ull << 20;

  void SetUp() override { init({}); }

  void init(const core::FormatOptions& opts) {
    pb_.reset();
    pa_.reset();
    fs_b_.reset();
    fs_a_.reset();
    nvmm_ = std::make_unique<nvmm::Device>(kNvmmSize);
    shm_ = std::make_unique<nvmm::Device>(kShmSize);
    fs_a_ = core::FileSystem::format(*nvmm_, *shm_, opts);
    fs_b_ = core::FileSystem::mount(*nvmm_, *shm_);
    pa_ = fs_a_->open_process(1000, 1000);
    pb_ = fs_b_->open_process(1000, 1000);
  }

  // Whole-system restart: every mount is gone, shm (volatile) is wiped, and
  // the returned mount is first-in over the surviving NVMM image.
  std::unique_ptr<core::FileSystem> restart_all() {
    pb_.reset();
    pa_.reset();
    fs_b_.reset();
    fs_a_.reset();
    shm_->wipe();
    return core::FileSystem::mount(*nvmm_, *shm_);
  }

  core::Process& a() { return *pa_; }
  core::Process& b() { return *pb_; }

  static void write_all(core::Process& p, const std::string& path,
                        const std::string& data) {
    auto fd = p.open(path, kOpenCreate | kOpenWrite);
    ASSERT_TRUE(fd.is_ok());
    auto n = p.write(*fd, data.data(), data.size());
    ASSERT_TRUE(n.is_ok());
    ASSERT_EQ(*n, data.size());
    ASSERT_TRUE(p.close(*fd).is_ok());
  }

  static std::string read_all(core::Process& p, const std::string& path) {
    auto fd = p.open(path, kOpenRead);
    if (!fd.is_ok()) return "<open failed>";
    std::string out;
    char buf[4096];
    for (;;) {
      auto n = p.read(*fd, buf, sizeof buf);
      if (!n.is_ok()) return "<read failed>";
      if (*n == 0) break;
      out.append(buf, *n);
    }
    (void)p.close(*fd);
    return out;
  }

  std::unique_ptr<nvmm::Device> nvmm_;
  std::unique_ptr<nvmm::Device> shm_;
  std::unique_ptr<core::FileSystem> fs_a_;
  std::unique_ptr<core::FileSystem> fs_b_;
  std::unique_ptr<core::Process> pa_;
  std::unique_ptr<core::Process> pb_;
};

// ---- registry lifecycle ----

TEST_F(MultiMountTest, SecondMountAttachesWithoutRecovery) {
  EXPECT_EQ(fs_a_->fsstat().mounts_attached, 2u);
  EXPECT_EQ(fs_b_->fsstat().mounts_attached, 2u);
  EXPECT_NE(fs_a_->mount_token(), fs_b_->mount_token());
  // A live peer means B is not first-in: no recovery ran.
  EXPECT_EQ(fs_b_->last_recovery().directories, 0u);
  ASSERT_TRUE(b().stat("/").is_ok());
}

TEST_F(MultiMountTest, LastOutMarksCleanFirstInRecovers) {
  ASSERT_TRUE(a().mkdir("/d").is_ok());
  fs_a_->unmount();  // not last out: B still attached
  EXPECT_EQ(fs_b_->fsstat().mounts_attached, 1u);
  ASSERT_TRUE(b().stat("/d").is_ok());
  write_all(b(), "/d/f", "after A left");
  fs_b_->unmount();  // last out: marks clean

  auto fs_c = restart_all();
  // Clean shutdown: first-in skips recovery entirely.
  EXPECT_EQ(fs_c->last_recovery().directories, 0u);
  auto pc = fs_c->open_process(1000, 1000);
  EXPECT_EQ(pc->stat("/d/f")->size, std::strlen("after A left"));
}

TEST_F(MultiMountTest, DirtyPeerDeathForcesRecoveryOnNextEra) {
  fs_a_->set_lease_ns(2'000'000);  // 2 ms
  fs_b_->set_lease_ns(2'000'000);
  ASSERT_TRUE(a().mkdir("/d").is_ok());
  // B dies without unmounting: destroy the instance, leave its slot behind.
  pb_.reset();
  fs_b_.reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // A's background heartbeat thread may have reaped B already; the explicit
  // call then finds nothing left, so the cumulative totals are the contract.
  // >= rather than ==: under load B can stall past the 2 ms lease while
  // still alive, get falsely reaped, reattach, and die — two legitimate
  // reaps of one peer.
  (void)fs_a_->reap_dead_mounts();
  EXPECT_GE(fs_a_->reap_totals().mounts, 1u);
  EXPECT_GE(fs_a_->fsstat().mount_reclaims, 1u);
  // A is now alone, but the era saw a dirty death: last-out must NOT mark
  // clean, so the next first-in runs full recovery.
  fs_a_->unmount();
  auto fs_c = restart_all();
  EXPECT_GE(fs_c->last_recovery().directories, 1u);
  const core::CheckReport cr = core::check_fs(*fs_c);
  EXPECT_TRUE(cr.ok()) << cr.summary();
}

// ---- cross-mount coherence ----

TEST_F(MultiMountTest, NamespaceChangesOnAVisibleOnB) {
  ASSERT_TRUE(a().mkdir("/d").is_ok());
  write_all(a(), "/d/f", "hello");
  auto st = b().stat("/d/f");
  ASSERT_TRUE(st.is_ok());
  EXPECT_EQ(st->size, 5u);

  // Warm B's caches, then rename on A: B must re-resolve, not serve the
  // cached binding (epoch validation against the shared NVMM image).
  ASSERT_TRUE(b().stat("/d/f").is_ok());
  ASSERT_TRUE(a().rename("/d/f", "/d/g").is_ok());
  EXPECT_EQ(b().stat("/d/f").code(), Errc::not_found);
  ASSERT_TRUE(b().stat("/d/g").is_ok());

  ASSERT_TRUE(a().unlink("/d/g").is_ok());
  ASSERT_TRUE(a().rmdir("/d").is_ok());
  EXPECT_EQ(b().stat("/d").code(), Errc::not_found);
}

TEST_F(MultiMountTest, DataWrittenOnAReadableOnB) {
  const std::string v1(8192, 'x');
  write_all(a(), "/f", v1);
  EXPECT_EQ(read_all(b(), "/f"), v1);

  // Extend + overwrite on A after B cached the extent view.
  std::string v2 = v1;
  v2[0] = 'y';
  v2 += std::string(65536, 'z');
  write_all(a(), "/f", v2);
  EXPECT_EQ(read_all(b(), "/f"), v2);
}

TEST_F(MultiMountTest, FsStatConvergesAcrossMounts) {
  for (int i = 0; i < 8; ++i)
    write_all(a(), "/f" + std::to_string(i), std::string(20000, 'd'));
  for (int i = 0; i < 8; ++i)
    write_all(b(), "/g" + std::to_string(i), std::string(20000, 'd'));
  const core::FsStat sa = fs_a_->fsstat();
  const core::FsStat sb = fs_b_->fsstat();
  // Shared accounting (NVMM free lists + shm reserve_unused) must agree
  // exactly; nothing is squirreled away in mount-private DRAM.
  EXPECT_EQ(sa.free_blocks, sb.free_blocks);
  EXPECT_EQ(sa.live_inodes, sb.live_inodes);
  EXPECT_EQ(sa.total_blocks, sb.total_blocks);
  EXPECT_EQ(sa.mounts_attached, 2u);
  EXPECT_EQ(sb.mounts_attached, 2u);
}

TEST_F(MultiMountTest, ConcurrentCreatesNeverDoubleServeAnInode) {
  // Both mounts hammer the shared free-object stack; the on-media CAS claim
  // must keep every inode unique even when both pop the same hint.
  constexpr int kPerThread = 120;
  auto worker = [&](core::FileSystem& fs, const std::string& prefix) {
    auto p = fs.open_process(1000, 1000);
    for (int i = 0; i < kPerThread; ++i) {
      auto fd = p->open(prefix + std::to_string(i), kOpenCreate | kOpenWrite);
      ASSERT_TRUE(fd.is_ok());
      ASSERT_TRUE(p->close(*fd).is_ok());
    }
  };
  std::thread ta(worker, std::ref(*fs_a_), std::string("/a"));
  std::thread tb(worker, std::ref(*fs_b_), std::string("/b"));
  ta.join();
  tb.join();
  auto entries = a().readdir("/");
  ASSERT_TRUE(entries.is_ok());
  EXPECT_EQ(entries->size(), 2u * kPerThread);
  std::vector<std::uint64_t> inodes;
  for (const auto& e : *entries) inodes.push_back(e.inode);
  std::sort(inodes.begin(), inodes.end());
  EXPECT_EQ(std::unique(inodes.begin(), inodes.end()), inodes.end());
  const core::CheckReport cr = core::check_fs(*fs_a_);
  EXPECT_TRUE(cr.ok()) << cr.summary();
}

// ---- superblock cache generation (recovery without epoch retirement) ----

TEST_F(MultiMountTest, RecoveryOnABumpsGenerationAndClearsBCaches) {
  ASSERT_TRUE(a().mkdir("/d").is_ok());
  write_all(a(), "/d/f", "payload");
  // Warm B and establish that warm stats hit B's caches.
  ASSERT_TRUE(b().stat("/d/f").is_ok());
  const std::uint64_t h0 = fs_b_->fsstat().lookup_hits;
  ASSERT_TRUE(b().stat("/d/f").is_ok());
  const std::uint64_t h1 = fs_b_->fsstat().lookup_hits;
  ASSERT_GT(h1, h0);

  // Recovery on A recycles objects without per-directory epoch retirement,
  // so it must invalidate EVERY mount's DRAM caches, not only A's own.
  // The channel is the NVMM superblock generation B polls per op.
  (void)fs_a_->recover();
  ASSERT_TRUE(b().stat("/d/f").is_ok());  // poll sees the bump, clears, refills
  const std::uint64_t h2 = fs_b_->fsstat().lookup_hits;
  EXPECT_EQ(h2, h1);  // cold again: no hit served from the stale cache
  ASSERT_TRUE(b().stat("/d/f").is_ok());
  EXPECT_GT(fs_b_->fsstat().lookup_hits, h2);  // re-warmed
  EXPECT_EQ(read_all(b(), "/d/f"), "payload");
}

TEST_F(MultiMountTest, LeaseReclaimWithoutHeldLocksKeepsSurvivorCaches) {
  // Three mounts: C dies dirty, A reaps it.  C finished its write before
  // dying — it held no file locks — so the reclaim names NO cache shards
  // and bumps no generation: B's warm caches survive the reap and keep
  // serving validated hits (the selective-invalidation upside; a peer that
  // DOES die mid-mutation is covered by the storm test below).
  auto fs_c = core::FileSystem::mount(*nvmm_, *shm_);
  auto pc = fs_c->open_process(1000, 1000);
  fs_a_->set_lease_ns(2'000'000);
  fs_b_->set_lease_ns(2'000'000);
  fs_c->set_lease_ns(2'000'000);
  write_all(*pc, "/f", "from c");
  ASSERT_TRUE(b().stat("/f").is_ok());
  const std::uint64_t h0 = fs_b_->fsstat().lookup_hits;
  ASSERT_TRUE(b().stat("/f").is_ok());
  ASSERT_GT(fs_b_->fsstat().lookup_hits, h0);

  pc.reset();
  fs_c.reset();  // dies without unmount
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // B sat idle past the lease too, so A may co-reap it (a false reap B
  // transparently survives by reattaching); C is the guaranteed victim —
  // though either survivor's background thread may claim the reap.
  (void)fs_a_->reap_dead_mounts();
  ASSERT_GE(fs_a_->reap_totals().mounts + fs_b_->reap_totals().mounts, 1u);

  const std::uint64_t h1 = fs_b_->fsstat().lookup_hits;
  ASSERT_TRUE(b().stat("/f").is_ok());
  EXPECT_GT(fs_b_->fsstat().lookup_hits, h1);  // still warm: no shard moved
  EXPECT_EQ(fs_b_->fsstat().shard_invalidations, 0u);
  EXPECT_EQ(read_all(b(), "/f"), "from c");
}

// ---- dead-peer resource reclaim ----

TEST_F(MultiMountTest, SurvivorReclaimsDeadMountsBlockReservations) {
  fs_a_->set_lease_ns(2'000'000);
  fs_b_->set_lease_ns(2'000'000);
  // One small write on A carves a reservation chunk; most of it is still
  // unserved when A dies.
  write_all(a(), "/f", std::string(100, 'r'));
  const std::uint64_t free_before = fs_b_->fsstat().free_blocks;
  pa_.reset();
  fs_a_.reset();  // dies without unmount, reservation stranded
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  (void)fs_b_->reap_dead_mounts();
  const core::ReapReport r = fs_b_->reap_totals();
  EXPECT_GE(r.mounts, 1u);  // >=: a falsely reaped, reattached A dies twice
  EXPECT_GT(r.reserved_blocks, 0u);
  // The stranded blocks went back to the free lists; accounting is exact
  // (free_blocks already counted reserve_unused, so the total is stable
  // and the blocks are now actually allocatable).
  EXPECT_EQ(fs_b_->fsstat().free_blocks, free_before);
  write_all(b(), "/g", std::string(1 << 20, 'g'));  // uses reclaimed space
  const core::CheckReport cr = core::check_fs(*fs_b_);
  EXPECT_TRUE(cr.ok()) << cr.summary();
}

// ---- the acceptance storm: mixed ops, kill one mount, survivor reclaims ----

TEST_F(MultiMountTest, KillOneMountStormSurvivorReclaimsAndImageChecksClean) {
  // A deliberately tiny lock table so concurrent distinct inodes exhaust
  // the keyed slots and exercise the full-table fallback path.
  core::FormatOptions opts;
  opts.lock_table_slots = 8;
  init(opts);
  // Generous lease: the wall-clock heartbeat thread (~lease/4) keeps both
  // mounts live through the storm even when tsan slows every op.
  fs_a_->set_lease_ns(50'000'000);
  fs_b_->set_lease_ns(50'000'000);

  // Phase 1: concurrent mixed-op storm on both mounts.
  constexpr int kThreadsPerMount = 2;
  constexpr int kIters = 150;
  std::atomic<bool> failed{false};
  auto worker = [&](core::FileSystem& fs, int id) {
    auto p = fs.open_process(1000, 1000);
    const std::string dir = "/w" + std::to_string(id);
    if (!p->mkdir(dir).is_ok()) {
      failed = true;
      return;
    }
    for (int i = 0; i < kIters; ++i) {
      const std::string f = dir + "/f" + std::to_string(i % 10);
      auto fd = p->open(f, kOpenCreate | kOpenWrite);
      if (!fd.is_ok()) {
        failed = true;
        return;
      }
      char buf[512];
      std::memset(buf, 'a' + (i % 26), sizeof buf);
      if (!p->write(*fd, buf, sizeof buf).is_ok() ||
          !p->close(*fd).is_ok()) {
        failed = true;
        return;
      }
      if (i % 7 == 0) (void)p->rename(f, dir + "/r" + std::to_string(i));
      if (i % 11 == 0) (void)p->unlink(dir + "/r" + std::to_string(i - 4));
      if (!p->stat(dir).is_ok()) {
        failed = true;
        return;
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreadsPerMount; ++t) {
    threads.emplace_back(worker, std::ref(*fs_a_), t);
    threads.emplace_back(worker, std::ref(*fs_b_), 100 + t);
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(failed.load());

  // Phase 2: one thread of mount A dies mid-allocation, holding its file's
  // exclusive lock and a block-allocator segment lock (the fail point sits
  // inside the free-range split, lease stamps still ticking).
  std::atomic<bool> crashed{false};
  std::thread crasher([&] {
    auto p = fs_a_->open_process(1000, 1000);
    auto fd = p->open("/doomed", kOpenCreate | kOpenWrite);
    if (!fd.is_ok()) return;
    FailPoint::arm("blockalloc.split");
    char buf[4096];
    std::memset(buf, 'd', sizeof buf);
    try {
      // A fresh thread's first allocation refills its reservation, which
      // carves from a segment free list and hits the split fail point.
      (void)p->write(*fd, buf, sizeof buf);
    } catch (const CrashedException&) {
      crashed = true;
    }
    FailPoint::disarm();
  });
  crasher.join();
  ASSERT_TRUE(crashed.load());
  pa_.reset();
  fs_a_.reset();  // the rest of "process A" dies with it; no unmount

  // Phase 3: B waits out the lease and reclaims everything A stranded
  // (its background heartbeat thread may beat the explicit call to it).
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  (void)fs_b_->reap_dead_mounts();
  const core::ReapReport r = fs_b_->reap_totals();
  EXPECT_GE(r.mounts, 1u);  // >=: a falsely reaped, reattached A dies twice
  EXPECT_GT(r.reserved_blocks, 0u);   // stranded reservation chunks
  EXPECT_GE(r.file_locks, 1u);        // /doomed's exclusive lock
  EXPECT_GE(r.segment_locks, 1u);     // the lock held across the split
  const core::FsStat sb = fs_b_->fsstat();
  EXPECT_GT(sb.lock_fallback_hits, 0u);  // the 8-slot table overflowed
  EXPECT_GE(sb.mount_reclaims, 1u);

  // B keeps operating on the reclaimed resources.
  write_all(b(), "/after", std::string(256 << 10, 'b'));
  EXPECT_EQ(read_all(b(), "/after"), std::string(256 << 10, 'b'));

  // B leaves; the era saw a dirty death, so the next first-in recovers the
  // half-finished /doomed write and the image must check out clean.
  fs_b_->unmount();
  auto fs_c = restart_all();
  EXPECT_GE(fs_c->last_recovery().directories, 1u);
  const core::CheckReport cr = core::check_fs(*fs_c);
  EXPECT_TRUE(cr.ok()) << cr.summary();
  auto pc = fs_c->open_process(1000, 1000);
  EXPECT_EQ(pc->stat("/after")->size, 256u << 10);
}

// ---- striped free-object cache ----

TEST_F(MultiMountTest, StripeStealsKeepServingUniqueInodesAfterPeerDeath) {
  fs_a_->set_lease_ns(2'000'000);
  fs_b_->set_lease_ns(2'000'000);
  // Peer churn on its own thread (thread-local hint magazines die with
  // it): create+unlink pushes ~10 magazine spills of freed inodes onto B's
  // home stripe, where they sit when B is killed.
  std::atomic<bool> failed{false};
  std::thread churn([&] {
    auto p = fs_b_->open_process(1000, 1000);
    for (int i = 0; i < 200 && !failed; ++i) {
      auto fd = p->open("/c" + std::to_string(i), kOpenCreate | kOpenWrite);
      if (!fd.is_ok() || !p->close(*fd).is_ok()) failed = true;
    }
    for (int i = 0; i < 200 && !failed; ++i)
      if (!p->unlink("/c" + std::to_string(i)).is_ok()) failed = true;
  });
  churn.join();
  ASSERT_FALSE(failed.load());
  pb_.reset();
  fs_b_.reset();  // killed; no unmount
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  (void)fs_a_->reap_dead_mounts();
  EXPECT_GE(fs_a_->reap_totals().mounts, 1u);

  // The survivor allocates far past its own home stripe (512 slots): pops
  // spill over into neighbor stripes — the dead peer's among them — and
  // every claim still goes through the on-media flag CAS, so no inode can
  // ever be double-served no matter whose stripe served the hint.
  constexpr int kFiles = 700;
  for (int i = 0; i < kFiles; ++i) {
    auto fd = a().open("/s" + std::to_string(i), kOpenCreate | kOpenWrite);
    ASSERT_TRUE(fd.is_ok());
    ASSERT_TRUE(a().close(*fd).is_ok());
  }
  EXPECT_GT(fs_a_->fsstat().obj_stripe_steals, 0u);
  auto entries = a().readdir("/");
  ASSERT_TRUE(entries.is_ok());
  EXPECT_EQ(entries->size(), static_cast<std::size_t>(kFiles));
  std::vector<std::uint64_t> inodes;
  for (const auto& e : *entries) inodes.push_back(e.inode);
  std::sort(inodes.begin(), inodes.end());
  EXPECT_EQ(std::unique(inodes.begin(), inodes.end()), inodes.end());
  const core::CheckReport cr = core::check_fs(*fs_a_);
  EXPECT_TRUE(cr.ok()) << cr.summary();
}

TEST_F(MultiMountTest, RecoveryRebuildsStripedFreeListsToSameAccounting) {
  // Two mounts with different segment biases churn allocations, one dies
  // dirty; full recovery must rebuild the per-segment free lists to
  // exactly the block accounting the survivors agreed on — the bias only
  // rotates where a mount *starts* carving, never what is free.
  fs_a_->set_lease_ns(2'000'000);
  fs_b_->set_lease_ns(2'000'000);
  for (int i = 0; i < 6; ++i) {
    write_all(a(), "/a" + std::to_string(i), std::string(30000, 'a'));
    write_all(b(), "/b" + std::to_string(i), std::string(30000, 'b'));
  }
  ASSERT_TRUE(a().unlink("/a1").is_ok());
  ASSERT_TRUE(b().unlink("/b1").is_ok());
  pb_.reset();
  fs_b_.reset();  // dirty death with stranded reservations
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  (void)fs_a_->reap_dead_mounts();
  ASSERT_GE(fs_a_->reap_totals().mounts, 1u);
  const std::uint64_t free_expected = fs_a_->fsstat().free_blocks;
  fs_a_->unmount();  // era saw a dirty death: next first-in recovers

  auto fs_c = restart_all();
  EXPECT_GE(fs_c->last_recovery().directories, 1u);
  EXPECT_EQ(fs_c->fsstat().free_blocks, free_expected);
  const core::CheckReport cr = core::check_fs(*fs_c);
  EXPECT_TRUE(cr.ok()) << cr.summary();
  auto pc = fs_c->open_process(1000, 1000);
  EXPECT_EQ(pc->stat("/a0")->size, 30000u);
  EXPECT_EQ(pc->stat("/b5")->size, 30000u);
  EXPECT_EQ(pc->stat("/a1").code(), Errc::not_found);
}

}  // namespace
}  // namespace simurgh::testing
