#include "crash_harness.h"

#include <gtest/gtest.h>

#include <ostream>
#include <sstream>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "core/openfile.h"

namespace simurgh::testing {

namespace {

std::uint64_t hash_file(core::Process& p, const std::string& path) {
  auto fd = p.open(path, core::kOpenRead);
  if (!fd.is_ok()) return 0;
  std::uint64_t h = kFnvOffset;
  char buf[1 << 16];
  for (;;) {
    auto n = p.read(*fd, buf, sizeof buf);
    if (!n.is_ok() || *n == 0) break;
    h = fnv1a64(std::string_view(buf, *n), h);
  }
  (void)p.close(*fd);
  return h;
}

void walk(core::Process& p, const std::string& path, NsSnapshot& out) {
  auto entries = p.readdir(path.empty() ? "/" : path);
  if (!entries.is_ok()) return;
  for (const core::DirEntry& de : *entries) {
    const std::string child = path + "/" + de.name;
    auto st = p.lstat(child);
    if (!st.is_ok()) continue;
    NsEntry e;
    e.type = st->mode & core::kModeTypeMask;
    e.nlink = st->nlink;
    e.size = st->size;
    if (st->is_symlink()) {
      auto tgt = p.readlink(child);
      e.content_hash = tgt.is_ok() ? fnv1a64(*tgt) : 0;
    } else if (!st->is_dir()) {
      e.content_hash = hash_file(p, child);
    }
    out.emplace(child, e);
    if (st->is_dir()) walk(p, child, out);
  }
}

std::string entry_str(const NsEntry& e) {
  std::ostringstream os;
  os << "{type=" << std::hex << e.type << std::dec << " nlink=" << e.nlink
     << " size=" << e.size << " hash=" << std::hex << e.content_hash << "}";
  return os.str();
}

}  // namespace

NsSnapshot snapshot_namespace(core::FileSystem& fs) {
  NsSnapshot out;
  auto root = fs.open_process(0, 0);
  auto st = root->stat("/");
  if (st.is_ok()) {
    NsEntry e;
    e.type = st->mode & core::kModeTypeMask;
    e.nlink = st->nlink;
    e.size = st->size;
    out.emplace("/", e);
  }
  walk(*root, "", out);
  return out;
}

std::string snapshot_diff(const NsSnapshot& a, const NsSnapshot& b) {
  std::ostringstream os;
  int shown = 0;
  constexpr int kMax = 5;
  for (const auto& [path, e] : a) {
    if (shown >= kMax) break;
    auto it = b.find(path);
    if (it == b.end()) {
      os << " [only in recovered: " << path << "]";
      ++shown;
    } else if (!(it->second == e)) {
      os << " [" << path << ": recovered " << entry_str(e) << " vs oracle "
         << entry_str(it->second) << "]";
      ++shown;
    }
  }
  for (const auto& [path, e] : b) {
    if (shown >= kMax) break;
    if (a.find(path) == a.end()) {
      os << " [missing from recovered: " << path << "]";
      ++shown;
    }
  }
  if (shown == 0) os << " (snapshots equal)";
  return os.str();
}

CrashStats& CrashStats::operator+=(const CrashStats& o) noexcept {
  fences += o.fences;
  images += o.images;
  exhaustive_windows += o.exhaustive_windows;
  sampled_windows += o.sampled_windows;
  lines_logged += o.lines_logged;
  max_window_lines = std::max(max_window_lines, o.max_window_lines);
  recovered_to_pre += o.recovered_to_pre;
  recovered_to_post += o.recovered_to_post;
  objects_committed += o.objects_committed;
  objects_reclaimed += o.objects_reclaimed;
  link_counts_repaired += o.link_counts_repaired;
  return *this;
}

std::ostream& operator<<(std::ostream& os, const CrashStats& s) {
  return os << s.images << " crash images across " << s.fences
            << " fence boundaries (" << s.exhaustive_windows
            << " exhaustive, " << s.sampled_windows << " sampled windows; "
            << s.lines_logged << " lines logged, max window "
            << s.max_window_lines << "); recovered to pre=" << s.recovered_to_pre
            << " post=" << s.recovered_to_post << "; recovery committed "
            << s.objects_committed << ", reclaimed " << s.objects_reclaimed
            << ", repaired " << s.link_counts_repaired << " link counts";
}

CrashHarness::CrashHarness() : CrashHarness(Options{}) {}

CrashHarness::CrashHarness(const Options& opts) : opts_(opts) {
  nvmm_ = std::make_unique<nvmm::Device>(opts_.nvmm_bytes);
  shm_ = std::make_unique<nvmm::Device>(opts_.shm_bytes);
  core::FormatOptions fo;
  fo.lock_table_slots = 1 << 10;  // small shm device
  fs_ = core::FileSystem::format(*nvmm_, *shm_, fo);
  proc_ = fs_->open_process(0, 0);
  scratch_nvmm_ = std::make_unique<nvmm::Device>(opts_.nvmm_bytes);
  scratch_shm_ = std::make_unique<nvmm::Device>(opts_.shm_bytes);
}

CrashHarness::~CrashHarness() {
  if (log_ != nullptr) log_->stop();
}

void CrashHarness::setup(const std::function<void(core::Process&)>& fn) {
  fn(*proc_);
}

void CrashHarness::run_op(const std::function<void(core::Process&)>& op) {
  pre_ = snapshot_namespace(*fs_);
  log_ = std::make_unique<nvmm::ShadowLog>(*nvmm_);
  log_->start();
  op(*proc_);
  log_->stop();
  log_->seal();
  post_ = snapshot_namespace(*fs_);
  stats_.lines_logged = log_->stats().lines_logged;
  stats_.max_window_lines = log_->stats().max_window_lines;
}

int CrashHarness::check_image(
    const std::string& context, const std::string& image_id,
    const std::vector<const NsSnapshot*>& oracle_states) {
  ++stats_.images;
  scratch_shm_->wipe();
  auto fs = core::FileSystem::mount(*scratch_nvmm_, *scratch_shm_);
  const core::RecoveryReport& rr = fs->last_recovery();
  stats_.objects_committed += rr.committed_objects;
  stats_.objects_reclaimed += rr.reclaimed_objects;
  stats_.link_counts_repaired += rr.link_counts_repaired;
  const core::CheckReport cr = core::check_fs(*fs);
  EXPECT_TRUE(cr.ok()) << context << " [" << image_id
                       << "]: post-recovery fsck: " << cr.summary();
  const NsSnapshot got = snapshot_namespace(*fs);
  for (std::size_t i = 0; i < oracle_states.size(); ++i)
    if (got == *oracle_states[i]) return static_cast<int>(i);
  std::ostringstream os;
  for (std::size_t i = 0; i < oracle_states.size(); ++i)
    os << "\n  vs oracle " << i << ":"
       << snapshot_diff(got, *oracle_states[i]);
  ADD_FAILURE() << context << " [" << image_id
                << "]: recovered namespace matches no oracle state"
                << os.str();
  return -1;
}

void CrashHarness::explore(const std::string& context) {
  ASSERT_NE(log_, nullptr) << "run_op() before explore()";
  const std::size_t nw = log_->n_windows();
  const std::vector<const NsSnapshot*> oracle{&pre_, &post_};
  auto tally = [&](int matched) {
    if (matched == 0) ++stats_.recovered_to_pre;
    if (matched == 1) ++stats_.recovered_to_post;
  };
  for (std::size_t f = 0; f <= nw; ++f) {
    ++stats_.fences;
    if (f == nw) {
      // Final durable state: everything flushed and fenced must recover to
      // exactly the post-op namespace.
      log_->materialize(f, {}, *scratch_nvmm_);
      const int m =
          check_image(context, "final durable state", {&post_});
      if (m == 0) ++stats_.recovered_to_post;
      continue;
    }
    const std::size_t k = log_->window(f).lines();
    std::ostringstream tag;
    tag << "fence " << f << "/" << nw << " (" << k << " lines)";
    if (k <= opts_.exhaustive_max_lines) {
      ++stats_.exhaustive_windows;
      for (std::uint64_t mask = 0; mask < (1ull << k); ++mask) {
        log_->materialize_mask(f, mask, *scratch_nvmm_);
        std::ostringstream id;
        id << tag.str() << " mask 0x" << std::hex << mask;
        tally(check_image(context, id.str(), oracle));
      }
    } else {
      ++stats_.sampled_windows;
      Rng rng(opts_.seed ^ mix64(f));
      std::vector<bool> take(k, false);
      for (std::size_t s = 0; s < opts_.samples_per_window; ++s) {
        if (s == 0) {
          take.assign(k, false);  // nothing landed
        } else if (s == 1) {
          take.assign(k, true);  // everything landed
        } else {
          for (std::size_t i = 0; i < k; ++i) take[i] = (rng.next() & 1) != 0;
        }
        log_->materialize(f, take, *scratch_nvmm_);
        std::ostringstream id;
        id << tag.str() << " sample " << s << " seed 0x" << std::hex
           << opts_.seed;
        tally(check_image(context, id.str(), oracle));
      }
    }
  }
}

void CrashHarness::explore_sampled(
    const std::string& context, std::size_t n,
    const std::vector<NsSnapshot>& oracle_states) {
  ASSERT_NE(log_, nullptr) << "run_op() before explore_sampled()";
  const std::size_t nw = log_->n_windows();
  std::vector<const NsSnapshot*> oracle;
  oracle.reserve(oracle_states.size());
  for (const NsSnapshot& s : oracle_states) oracle.push_back(&s);
  Rng rng(opts_.seed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t f = static_cast<std::size_t>(rng.below(nw + 1));
    ++stats_.fences;
    std::vector<bool> take;
    std::size_t k = 0;
    if (f < nw) {
      k = log_->window(f).lines();
      take.resize(k);
      for (std::size_t b = 0; b < k; ++b) take[b] = (rng.next() & 1) != 0;
    }
    log_->materialize(f, take, *scratch_nvmm_);
    std::ostringstream id;
    id << "sample " << i << " fence " << f << "/" << nw << " (" << k
       << " lines) seed 0x" << std::hex << opts_.seed;
    const int m = check_image(context, id.str(), oracle);
    // With a multi-state oracle, "pre" means the earliest state and "post"
    // the latest that matched; intermediate matches count as post-steps.
    if (m == 0) ++stats_.recovered_to_pre;
    if (m > 0) ++stats_.recovered_to_post;
  }
}

}  // namespace simurgh::testing
