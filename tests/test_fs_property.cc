// Property-based testing: random operation sequences executed against both
// Simurgh and an in-memory reference model must agree; crash injection at
// random points must never lose committed state.
#include <map>
#include <optional>
#include <set>
#include <string>

#include "common/failpoint.h"
#include "common/rng.h"
#include "fs_fixture.h"

namespace simurgh::testing {
namespace {

using core::kOpenCreate;
using core::kOpenRead;
using core::kOpenWrite;

// A trivially correct reference: path -> file contents (files only, one
// flat directory per test).  Directory ops are compared structurally.
class ReferenceModel {
 public:
  bool create(const std::string& name) {
    return files_.emplace(name, std::string()).second;
  }
  bool remove(const std::string& name) { return files_.erase(name) == 1; }
  bool rename(const std::string& from, const std::string& to) {
    auto it = files_.find(from);
    if (it == files_.end()) return false;
    std::string data = std::move(it->second);
    files_.erase(it);
    files_[to] = std::move(data);
    return true;
  }
  bool write(const std::string& name, std::uint64_t off,
             const std::string& data) {
    auto it = files_.find(name);
    if (it == files_.end()) return false;
    std::string& f = it->second;
    if (f.size() < off + data.size()) f.resize(off + data.size(), '\0');
    f.replace(off, data.size(), data);
    return true;
  }
  std::optional<std::string> read(const std::string& name, std::uint64_t off,
                                  std::size_t n) const {
    auto it = files_.find(name);
    if (it == files_.end()) return std::nullopt;
    if (off >= it->second.size()) return std::string();
    return it->second.substr(off, n);
  }
  const std::map<std::string, std::string>& files() const { return files_; }

 private:
  std::map<std::string, std::string> files_;
};

class FsPropertyTest : public FsTest,
                       public ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(FsPropertyTest, RandomOpsMatchReferenceModel) {
  Rng rng(GetParam());
  ReferenceModel ref;
  ASSERT_TRUE(p().mkdir("/w").is_ok());
  auto name_of = [&](std::uint64_t i) {
    return "/w/f" + std::to_string(i % 40);
  };
  for (int step = 0; step < 800; ++step) {
    const std::uint64_t pick = rng.next();
    const std::string name = name_of(rng.next());
    switch (pick % 5) {
      case 0: {  // create
        const bool ref_ok = ref.create(name);
        auto fd = p().open(name, kOpenCreate | core::kOpenExcl | kOpenWrite);
        EXPECT_EQ(fd.is_ok(), ref_ok) << name << " step " << step;
        if (fd.is_ok()) ASSERT_TRUE(p().close(*fd).is_ok());
        break;
      }
      case 1: {  // unlink
        const bool ref_ok = ref.remove(name);
        EXPECT_EQ(p().unlink(name).is_ok(), ref_ok) << name;
        break;
      }
      case 2: {  // rename
        const std::string to = name_of(rng.next());
        if (name == to) break;
        const bool ref_ok = ref.rename(name, to);
        EXPECT_EQ(p().rename(name, to).is_ok(), ref_ok)
            << name << " -> " << to;
        break;
      }
      case 3: {  // write
        const std::uint64_t off = rng.below(20000);
        std::string data(1 + rng.below(300), 'a' + char(rng.below(26)));
        const bool ref_ok = ref.write(name, off, data);
        auto fd = p().open(name, kOpenWrite);
        if (!ref_ok) {
          EXPECT_FALSE(fd.is_ok()) << name;
          break;
        }
        ASSERT_TRUE(fd.is_ok()) << name;
        EXPECT_EQ(*p().pwrite(*fd, data.data(), data.size(), off),
                  data.size());
        ASSERT_TRUE(p().close(*fd).is_ok());
        break;
      }
      case 4: {  // read + compare
        const std::uint64_t off = rng.below(20000);
        const std::size_t n = 1 + rng.below(400);
        const auto expect = ref.read(name, off, n);
        auto fd = p().open(name, kOpenRead);
        if (!expect.has_value()) {
          EXPECT_FALSE(fd.is_ok()) << name;
          break;
        }
        ASSERT_TRUE(fd.is_ok()) << name;
        std::string buf(n, 'X');
        auto r = p().pread(*fd, buf.data(), n, off);
        ASSERT_TRUE(r.is_ok());
        buf.resize(*r);
        EXPECT_EQ(buf, *expect) << name << " off " << off;
        ASSERT_TRUE(p().close(*fd).is_ok());
        break;
      }
    }
  }
  // Final structural comparison.
  auto listing = p().readdir("/w");
  ASSERT_TRUE(listing.is_ok());
  std::set<std::string> fs_names;
  for (const auto& e : *listing) fs_names.insert("/w/" + e.name);
  std::set<std::string> ref_names;
  for (const auto& [n, _] : ref.files()) ref_names.insert(n);
  EXPECT_EQ(fs_names, ref_names);
  // Sizes agree for every surviving file.
  for (const auto& [n, data] : ref.files())
    EXPECT_EQ(p().stat(n)->size, data.size()) << n;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Crash-anywhere property: arm a random fail point with a random skip
// count, run a batch of metadata ops, crash somewhere inside, remount, and
// check invariants (no duplicate names, no dangling entries, allocator
// consistency).
class FsCrashAnywhereTest : public FsTest,
                            public ::testing::WithParamInterface<std::uint64_t> {
};

TEST_P(FsCrashAnywhereTest, InvariantsHoldAfterRandomCrash) {
  static constexpr const char* kPoints[] = {
      "objalloc.claimed",
      "fs.create.inode_persisted",
      "fs.create.entry_persisted",
      "fs.create.published",
      "dir.insert.before_publish",
      "dir.insert.after_publish",
      "dir.remove.entry_invalidated",
      "dir.remove.entry_zeroed",
      "dir.remove.slot_cleared",
      "dir.rename.shadow_created",
      "dir.rename.line_inconsistent",
      "dir.rename.published",
      "dir.xrename.log_armed",
      "dir.xrename.dst_published",
      "fs.drop_inode.storage_freed",
  };
  Rng rng(GetParam());
  fs_->set_lease_ns(2'000'000);
  ASSERT_TRUE(p().mkdir("/a").is_ok());
  ASSERT_TRUE(p().mkdir("/b").is_ok());

  const char* point = kPoints[rng.below(std::size(kPoints))];
  FailPoint::arm(point, static_cast<int>(rng.below(20)));
  bool crashed = false;
  try {
    for (int i = 0; i < 120 && !crashed; ++i) {
      const std::string n = "/a/f" + std::to_string(rng.below(30));
      switch (rng.below(4)) {
        case 0:
          (void)p().open(n, kOpenCreate | kOpenWrite);
          break;
        case 1:
          (void)p().unlink(n);
          break;
        case 2:
          (void)p().rename(n, "/a/g" + std::to_string(rng.below(30)));
          break;
        case 3:
          (void)p().rename(n, "/b/x" + std::to_string(rng.below(30)));
          break;
      }
    }
  } catch (const CrashedException&) {
    crashed = true;
  }
  FailPoint::disarm();

  remount_after_crash();

  // Invariant 1: directory listings contain no duplicate names and every
  // entry resolves to a live inode.
  for (const char* dir : {"/a", "/b"}) {
    auto listing = p().readdir(dir);
    ASSERT_TRUE(listing.is_ok());
    std::set<std::string> names;
    for (const auto& e : *listing) {
      EXPECT_TRUE(names.insert(e.name).second)
          << "duplicate " << e.name << " after crash at " << point;
      EXPECT_TRUE(p().stat(std::string(dir) + "/" + e.name).is_ok());
    }
  }
  // Invariant 2: a second recovery pass finds nothing left to fix.
  const auto report = fs_->recover();
  EXPECT_EQ(report.reclaimed_objects, 0u) << point;
  EXPECT_EQ(report.committed_objects, 0u) << point;
  // Invariant 3: the namespace still works.
  EXPECT_TRUE(p().open("/a/post_crash", kOpenCreate | kOpenWrite).is_ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsCrashAnywhereTest,
                         ::testing::Range<std::uint64_t>(100, 124));

}  // namespace
}  // namespace simurgh::testing

namespace simurgh::testing {
namespace {

// Fuzz the path surface: arbitrary byte strings must never crash the
// walker and must come back with a sensible error (or succeed).
class PathFuzzTest : public FsTest,
                     public ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(PathFuzzTest, ArbitraryPathsNeverCrash) {
  Rng rng(GetParam());
  ASSERT_TRUE(p().mkdir("/real").is_ok());
  ASSERT_TRUE(
      p().open("/real/file", core::kOpenCreate | core::kOpenWrite).is_ok());
  static const char alphabet[] = "/ab./\\\x01\xff ~$*?";
  for (int i = 0; i < 400; ++i) {
    std::string path;
    const std::size_t len = rng.below(40);
    for (std::size_t k = 0; k < len; ++k)
      path += alphabet[rng.below(sizeof alphabet - 1)];
    // None of these may crash; results are whatever POSIX-ish code fits.
    (void)p().stat(path);
    (void)p().open(path, core::kOpenRead);
    (void)p().unlink(path);
    (void)p().mkdir(path);
    (void)p().readdir(path);
    (void)p().rename(path, "/real/file");
    (void)p().rename("/real/file", path);
    // Keep the anchor file alive for the next round.
    if (!p().stat("/real/file").is_ok())
      ASSERT_TRUE(p().open("/real/file",
                           core::kOpenCreate | core::kOpenWrite)
                      .is_ok());
  }
  // The namespace survived the abuse.
  EXPECT_TRUE(p().stat("/real").is_ok());
  const auto report = fs_->recover();
  EXPECT_TRUE(p().stat("/real/file").is_ok());
  (void)report;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathFuzzTest,
                         ::testing::Values(901, 902, 903, 904));

}  // namespace
}  // namespace simurgh::testing
