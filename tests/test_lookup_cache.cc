// LookupCache unit tests + FS-level epoch-invalidation tests: a cache hit
// must never surface a stale binding, and mutations must invalidate by
// epoch alone (no broadcasts).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/lookup_cache.h"
#include "fs_fixture.h"

namespace simurgh::testing {
namespace {

using core::LookupCache;
using core::LookupCacheStats;
using core::PathCache;

// ---- direct unit tests ----

TEST(LookupCacheUnit, CacheableBounds) {
  EXPECT_FALSE(LookupCache::cacheable(""));
  EXPECT_TRUE(LookupCache::cacheable("a"));
  EXPECT_TRUE(LookupCache::cacheable(std::string(56, 'x')));
  EXPECT_FALSE(LookupCache::cacheable(std::string(57, 'x')));
}

TEST(LookupCacheUnit, PutGetRoundTrip) {
  LookupCache c(64);
  EXPECT_EQ(c.capacity(), 64u);
  LookupCache::Binding b;
  EXPECT_FALSE(c.get(100, "file", 7, b));  // cold
  c.put(100, "file", 7, 0xfe0, 0x1000);
  ASSERT_TRUE(c.get(100, "file", 7, b));
  EXPECT_EQ(b.fentry_off, 0xfe0u);
  EXPECT_EQ(b.inode_off, 0x1000u);
  const LookupCacheStats s = c.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.fills, 1u);
}

TEST(LookupCacheUnit, EpochMismatchIsConflictNotHit) {
  LookupCache c(64);
  c.put(100, "file", 7, 0xfe0, 0x1000);
  LookupCache::Binding b;
  EXPECT_FALSE(c.get(100, "file", 8, b));  // directory mutated since fill
  const LookupCacheStats s = c.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.conflicts, 1u);
}

TEST(LookupCacheUnit, ExactNameMatchingNeverAliases) {
  LookupCache c(64);
  c.put(100, "alpha", 1, 0xa, 0xa0);
  LookupCache::Binding b;
  EXPECT_FALSE(c.get(100, "alphb", 1, b));
  EXPECT_FALSE(c.get(100, "alph", 1, b));
  EXPECT_FALSE(c.get(101, "alpha", 1, b));  // other parent
  EXPECT_TRUE(c.get(100, "alpha", 1, b));
}

TEST(LookupCacheUnit, MaxLenNameRoundTrips) {
  LookupCache c(64);
  const std::string name(56, 'n');
  c.put(42, name, 3, 0xbeef, 0xf00d);
  LookupCache::Binding b;
  ASSERT_TRUE(c.get(42, name, 3, b));
  EXPECT_EQ(b.inode_off, 0xf00du);
  // One byte shorter is a different key even with equal stored words.
  EXPECT_FALSE(c.get(42, std::string(55, 'n'), 3, b));
}

TEST(LookupCacheUnit, ClearDropsEverything) {
  LookupCache c(64);
  c.put(1, "a", 0, 0x10, 0x20);
  c.clear();
  LookupCache::Binding b;
  EXPECT_FALSE(c.get(1, "a", 0, b));
}

// ---- PathCache (whole-path layer) unit tests ----

TEST(PathCacheUnit, CacheableBounds) {
  EXPECT_FALSE(PathCache::cacheable(""));
  EXPECT_TRUE(PathCache::cacheable("/a"));
  EXPECT_TRUE(PathCache::cacheable(std::string(120, 'p')));
  EXPECT_FALSE(PathCache::cacheable(std::string(121, 'p')));
}

TEST(PathCacheUnit, PutGetRoundTripAndCredentialIsolation) {
  PathCache c(64);
  EXPECT_EQ(c.capacity(), 64u);
  PathCache::Entry e;
  e.parent_off = 0x100;
  e.inode_off = 0x200;
  e.leaf_pos = 3;
  e.leaf_len = 1;
  e.n_dirs = 2;
  e.dirs[0] = 8;
  e.epochs[0] = 4;
  e.dirs[1] = 16;
  e.epochs[1] = 6;
  c.put(7, "/a/b", e);
  PathCache::Entry g;
  ASSERT_TRUE(c.get(7, "/a/b", g));
  EXPECT_EQ(g.parent_off, 0x100u);
  EXPECT_EQ(g.inode_off, 0x200u);
  EXPECT_EQ(g.leaf_pos, 3u);
  EXPECT_EQ(g.leaf_len, 1u);
  ASSERT_EQ(g.n_dirs, 2u);
  EXPECT_EQ(g.dirs[1], 16u);
  EXPECT_EQ(g.epochs[1], 6u);
  // Entries never cross credentials or alias another path.
  EXPECT_FALSE(c.get(8, "/a/b", g));
  EXPECT_FALSE(c.get(7, "/a/c", g));
  EXPECT_FALSE(c.get(7, "/a/", g));
  c.note_hit();
  c.note_conflict();
  const LookupCacheStats s = c.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.conflicts, 1u);
  EXPECT_EQ(s.fills, 1u);
}

TEST(PathCacheUnit, RefusesEntriesItCouldNotValidate) {
  PathCache c(64);
  PathCache::Entry e;
  e.inode_off = 0x200;
  e.n_dirs = 0;  // no chain -> nothing to validate against
  c.put(1, "/x", e);
  PathCache::Entry g;
  EXPECT_FALSE(c.get(1, "/x", g));
  e.n_dirs = 1;
  e.dirs[0] = 8;
  e.inode_off = 0;  // unresolved leaf
  c.put(1, "/x", e);
  EXPECT_FALSE(c.get(1, "/x", g));
  EXPECT_EQ(c.stats().fills, 0u);
}

TEST(PathCacheUnit, ClearDropsEverything) {
  PathCache c(64);
  PathCache::Entry e;
  e.inode_off = 0x200;
  e.n_dirs = 1;
  e.dirs[0] = 8;
  c.put(1, "/x", e);
  PathCache::Entry g;
  ASSERT_TRUE(c.get(1, "/x", g));
  c.clear();
  EXPECT_FALSE(c.get(1, "/x", g));
}

// ---- FS-level: epoch protocol and end-to-end invalidation ----

class LookupCacheFsTest : public FsTest {
 protected:
  std::uint64_t epoch_of(const std::string& dir) {
    auto st = p().stat(dir);
    EXPECT_TRUE(st.is_ok());
    return fs_->dirops().dir_epoch(*fs_->inode_at(st->inode));
  }
  core::LookupCacheStats delta_stats() {
    auto s = fs_->lookup_cache().stats();
    fs_->lookup_cache().reset_stats();
    return s;
  }
  core::LookupCacheStats delta_path_stats() {
    auto s = fs_->path_cache().stats();
    fs_->path_cache().reset_stats();
    return s;
  }
};

TEST_F(LookupCacheFsTest, MutationsBumpTheDirectoryEpochTwice) {
  ASSERT_TRUE(p().mkdir("/d").is_ok());
  const std::uint64_t e0 = epoch_of("/d");
  auto fd = p().open("/d/f", core::kOpenCreate | core::kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().close(*fd).is_ok());
  const std::uint64_t e1 = epoch_of("/d");
  EXPECT_EQ(e1, e0 + 2);  // one balanced guard around the insert
  ASSERT_TRUE(p().rename("/d/f", "/d/g").is_ok());
  const std::uint64_t e2 = epoch_of("/d");
  EXPECT_EQ(e2, e1 + 2);
  ASSERT_TRUE(p().unlink("/d/g").is_ok());
  EXPECT_EQ(epoch_of("/d"), e2 + 2);
}

TEST_F(LookupCacheFsTest, ReadsDoNotBumpTheEpoch) {
  ASSERT_TRUE(p().mkdir("/d").is_ok());
  auto fd = p().open("/d/f", core::kOpenCreate | core::kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().close(*fd).is_ok());
  const std::uint64_t e = epoch_of("/d");
  ASSERT_TRUE(p().stat("/d/f").is_ok());
  ASSERT_TRUE(p().readdir("/d").is_ok());
  ASSERT_TRUE(p().chmod("/d/f", 0600).is_ok());  // inode-only change
  EXPECT_EQ(epoch_of("/d"), e);
}

TEST_F(LookupCacheFsTest, CrossDirRenameBumpsBothDirectories) {
  ASSERT_TRUE(p().mkdir("/src").is_ok());
  ASSERT_TRUE(p().mkdir("/dst").is_ok());
  auto fd = p().open("/src/f", core::kOpenCreate | core::kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().close(*fd).is_ok());
  const std::uint64_t es = epoch_of("/src"), ed = epoch_of("/dst");
  ASSERT_TRUE(p().rename("/src/f", "/dst/f").is_ok());
  EXPECT_EQ(epoch_of("/src"), es + 2);
  EXPECT_EQ(epoch_of("/dst"), ed + 2);
}

TEST_F(LookupCacheFsTest, WarmWalkServesFromTheCache) {
  // Pin walks to the per-component layer so its hit accounting is exact
  // (the whole-path layer would otherwise short-circuit the warm walks).
  fs_->walker().set_path_cache(nullptr);
  ASSERT_TRUE(p().mkdir("/a").is_ok());
  ASSERT_TRUE(p().mkdir("/a/b").is_ok());
  auto fd = p().open("/a/b/f", core::kOpenCreate | core::kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().close(*fd).is_ok());
  ASSERT_TRUE(p().stat("/a/b/f").is_ok());  // fill
  (void)delta_stats();
  ASSERT_TRUE(p().stat("/a/b/f").is_ok());  // all three components warm
  const auto s = delta_stats();
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 0u);
  // The shared cache serves every Process of the mount, not just one.
  auto other = fs_->open_process(1000, 1000);
  ASSERT_TRUE(other->stat("/a/b/f").is_ok());
  EXPECT_EQ(delta_stats().hits, 3u);
  // And the mount-wide counters surface through fsstat().
  ASSERT_TRUE(p().stat("/a/b/f").is_ok());
  EXPECT_GT(fs_->fsstat().lookup_hits, 0u);
}

TEST_F(LookupCacheFsTest, WholePathLayerShortCircuitsWarmWalks) {
  ASSERT_TRUE(p().mkdir("/a").is_ok());
  ASSERT_TRUE(p().mkdir("/a/b").is_ok());
  auto fd = p().open("/a/b/f", core::kOpenCreate | core::kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().close(*fd).is_ok());
  ASSERT_TRUE(p().stat("/a/b/f").is_ok());  // walk fills both layers
  (void)delta_stats();
  (void)delta_path_stats();
  ASSERT_TRUE(p().stat("/a/b/f").is_ok());
  const auto pcs = delta_path_stats();
  EXPECT_EQ(pcs.hits, 1u);
  EXPECT_EQ(pcs.misses + pcs.conflicts, 0u);
  // The warm stat never reached the per-component layer at all.
  const auto lcs = delta_stats();
  EXPECT_EQ(lcs.hits + lcs.misses, 0u);
}

TEST_F(LookupCacheFsTest, DirectoryChmodBumpsItsOwnEpoch) {
  ASSERT_TRUE(p().mkdir("/d").is_ok());
  const std::uint64_t e0 = epoch_of("/d");
  ASSERT_TRUE(p().chmod("/d", 0755).is_ok());
  EXPECT_EQ(epoch_of("/d"), e0 + 2);  // traversal rights changed
}

TEST_F(LookupCacheFsTest, AncestorChmodRevokesWarmPaths) {
  ASSERT_TRUE(p().mkdir("/a").is_ok());
  ASSERT_TRUE(p().mkdir("/a/b").is_ok());
  auto fd = p().open("/a/b/f", core::kOpenCreate | core::kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().close(*fd).is_ok());
  ASSERT_TRUE(p().stat("/a/b/f").is_ok());
  ASSERT_TRUE(p().stat("/a/b/f").is_ok());  // warm whole-path hit
  // Removing x from /a must make the *warm* walk fail closed: the cached
  // entry stops validating because chmod bumped /a's epoch.
  ASSERT_TRUE(p().chmod("/a", 0600).is_ok());
  EXPECT_EQ(p().stat("/a/b/f").code(), Errc::permission);
  ASSERT_TRUE(p().chmod("/a", 0700).is_ok());
  EXPECT_TRUE(p().stat("/a/b/f").is_ok());
}

TEST_F(LookupCacheFsTest, AncestorChownRevokesWarmPaths) {
  ASSERT_TRUE(p().mkdir("/a").is_ok());
  ASSERT_TRUE(p().chmod("/a", 0700).is_ok());  // owner-only traversal
  auto fd = p().open("/a/f", core::kOpenCreate | core::kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().close(*fd).is_ok());
  ASSERT_TRUE(p().stat("/a/f").is_ok());
  ASSERT_TRUE(p().stat("/a/f").is_ok());  // warm under uid 1000
  auto root = fs_->open_process(0, 0);
  ASSERT_TRUE(root->chown("/a", 2000, 2000).is_ok());
  // /a now belongs to someone else and grants others nothing; the warm
  // entry must not keep serving the old answer.
  EXPECT_EQ(p().stat("/a/f").code(), Errc::permission);
}

TEST_F(LookupCacheFsTest, WholePathEntriesAreCredentialScoped) {
  ASSERT_TRUE(p().mkdir("/a").is_ok());
  auto fd = p().open("/a/f", core::kOpenCreate | core::kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().close(*fd).is_ok());
  ASSERT_TRUE(p().stat("/a/f").is_ok());  // fill under (1000, 1000)
  (void)delta_path_stats();
  auto other = fs_->open_process(2000, 2000);
  ASSERT_TRUE(other->stat("/a/f").is_ok());
  // Different credentials never match the uid-1000 entry: first walk under
  // (2000, 2000) misses and fills its own.
  auto pcs = delta_path_stats();
  EXPECT_EQ(pcs.hits, 0u);
  EXPECT_EQ(pcs.misses, 1u);
  EXPECT_EQ(pcs.fills, 1u);
  ASSERT_TRUE(other->stat("/a/f").is_ok());
  EXPECT_EQ(delta_path_stats().hits, 1u);
}

TEST_F(LookupCacheFsTest, DotComponentsBypassTheWholePathLayer) {
  ASSERT_TRUE(p().mkdir("/a").is_ok());
  auto fd = p().open("/a/f", core::kOpenCreate | core::kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().close(*fd).is_ok());
  (void)delta_path_stats();
  ASSERT_TRUE(p().stat("/a/./f").is_ok());
  ASSERT_TRUE(p().stat("/a/./f").is_ok());
  ASSERT_TRUE(p().stat("/a/../a/f").is_ok());
  const auto pcs = delta_path_stats();
  EXPECT_EQ(pcs.hits, 0u);
  EXPECT_EQ(pcs.fills, 0u);  // "." and ".." poison the trace
}

TEST_F(LookupCacheFsTest, SymlinkWalksBypassTheWholePathLayer) {
  ASSERT_TRUE(p().mkdir("/t").is_ok());
  auto fd = p().open("/t/f", core::kOpenCreate | core::kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().close(*fd).is_ok());
  ASSERT_TRUE(p().symlink("/t", "/ln").is_ok());
  (void)delta_path_stats();
  ASSERT_TRUE(p().stat("/ln/f").is_ok());
  ASSERT_TRUE(p().stat("/ln/f").is_ok());
  ASSERT_TRUE(p().lstat("/ln").is_ok());  // symlink leaf, not followed
  ASSERT_TRUE(p().lstat("/ln").is_ok());
  const auto pcs = delta_path_stats();
  EXPECT_EQ(pcs.hits, 0u);
  EXPECT_EQ(pcs.fills, 0u);
}

TEST_F(LookupCacheFsTest, UnlinkedNameNeverResolvesWarm) {
  ASSERT_TRUE(p().mkdir("/d").is_ok());
  auto fd = p().open("/d/f", core::kOpenCreate | core::kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().close(*fd).is_ok());
  ASSERT_TRUE(p().stat("/d/f").is_ok());  // cached binding
  ASSERT_TRUE(p().unlink("/d/f").is_ok());
  EXPECT_EQ(p().stat("/d/f").code(), Errc::not_found);
}

TEST_F(LookupCacheFsTest, RenameRebindsWithoutStaleHits) {
  ASSERT_TRUE(p().mkdir("/d").is_ok());
  auto fd = p().open("/d/old", core::kOpenCreate | core::kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().close(*fd).is_ok());
  const std::uint64_t ino = p().stat("/d/old")->inode;  // cached
  ASSERT_TRUE(p().rename("/d/old", "/d/new").is_ok());
  EXPECT_EQ(p().stat("/d/old").code(), Errc::not_found);
  auto st = p().stat("/d/new");
  ASSERT_TRUE(st.is_ok());
  EXPECT_EQ(st->inode, ino);
}

TEST_F(LookupCacheFsTest, RmdirInvalidatesTheCachedDirectory) {
  ASSERT_TRUE(p().mkdir("/d").is_ok());
  ASSERT_TRUE(p().mkdir("/d/sub").is_ok());
  ASSERT_TRUE(p().stat("/d/sub").is_ok());  // cached
  ASSERT_TRUE(p().rmdir("/d/sub").is_ok());
  EXPECT_EQ(p().stat("/d/sub").code(), Errc::not_found);
}

// ---- cross-lifetime epoch uniqueness (directory-recycling ABA) ----

TEST_F(LookupCacheFsTest, FreshDirectoriesStartAtUniqueEpochs) {
  ASSERT_TRUE(p().mkdir("/d1").is_ok());
  ASSERT_TRUE(p().mkdir("/d2").is_ok());
  EXPECT_NE(epoch_of("/d1"), epoch_of("/d2"));
  // Recycling an offset never rewinds its epoch stream: a directory
  // created after another died starts past the dead one's final epoch.
  const std::uint64_t final_epoch = epoch_of("/d1");
  ASSERT_TRUE(p().rmdir("/d1").is_ok());
  ASSERT_TRUE(p().mkdir("/d3").is_ok());
  EXPECT_GT(epoch_of("/d3"), final_epoch);
}

TEST_F(LookupCacheFsTest, RecycledDirectoryNeverServesStaleBindings) {
  // Reconstructs the component-cache ABA: a directory dies while the cache
  // holds one of its (parent_off, name) bindings, the allocator recycles
  // its inode offset into a fresh directory, and the fresh directory's own
  // mutations march its epoch to exactly the dead one's fill epoch.  With
  // lifetime-unique epoch streams the stale entry can never validate;
  // without them this walk would observe the dead directory's freed inode.
  ASSERT_TRUE(p().mkdir("/p").is_ok());
  const std::uint64_t p_ino = p().stat("/p")->inode;
  auto fd = p().open("/p/f", core::kOpenCreate | core::kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  const std::uint64_t f_old = p().fstat(*fd)->inode;
  ASSERT_TRUE(p().close(*fd).is_ok());
  auto fd2 = p().open("/p/g", core::kOpenCreate | core::kOpenWrite);
  ASSERT_TRUE(fd2.is_ok());
  ASSERT_TRUE(p().close(*fd2).is_ok());
  ASSERT_TRUE(p().stat("/p/f").is_ok());  // fills (p_ino, "f")
  ASSERT_TRUE(p().unlink("/p/f").is_ok());
  ASSERT_TRUE(p().unlink("/p/g").is_ok());
  ASSERT_TRUE(p().rmdir("/p").is_ok());

  // Recycle /p's inode offset into a fresh directory.
  std::string q;
  for (int i = 0; i < 32 && q.empty(); ++i) {
    const std::string cand = "/q" + std::to_string(i);
    ASSERT_TRUE(p().mkdir(cand).is_ok());
    if (p().stat(cand)->inode == p_ino) q = cand;
  }
  ASSERT_FALSE(q.empty()) << "allocator stopped recycling inode offsets; "
                             "re-provoke the ABA differently";

  // Advance the recycled directory's epoch by the same two mutations the
  // dead one had absorbed when the stale entry was filled.  The spare file
  // soaks up /p/f's freed inode so a stale hit stays distinguishable.
  auto g = p().open(q + "/g", core::kOpenCreate | core::kOpenWrite);
  ASSERT_TRUE(g.is_ok());
  ASSERT_TRUE(p().close(*g).is_ok());
  auto spare = p().open("/spare", core::kOpenCreate | core::kOpenWrite);
  ASSERT_TRUE(spare.is_ok());
  ASSERT_TRUE(p().close(*spare).is_ok());
  auto f = p().open(q + "/f", core::kOpenCreate | core::kOpenWrite);
  ASSERT_TRUE(f.is_ok());
  const std::uint64_t f_new = p().fstat(*f)->inode;
  ASSERT_TRUE(p().close(*f).is_ok());
  ASSERT_NE(f_new, f_old);  // distinct inode: a stale hit is observable

  auto st = p().stat(q + "/f");
  ASSERT_TRUE(st.is_ok());
  EXPECT_EQ(st->inode, f_new);
}

TEST_F(LookupCacheFsTest, RecoveryDropsCachedBindings) {
  ASSERT_TRUE(p().mkdir("/d").is_ok());
  ASSERT_TRUE(p().stat("/d").is_ok());
  ASSERT_TRUE(p().stat("/d").is_ok());  // warm whole-path entry
  (void)delta_stats();
  (void)delta_path_stats();
  // Recovery may recycle directory blocks without per-directory retire
  // bookkeeping, so it drops all cached bindings wholesale.
  (void)fs_->recover();
  ASSERT_TRUE(p().stat("/d").is_ok());
  EXPECT_EQ(delta_path_stats().hits, 0u);  // cold again
}

TEST_F(LookupCacheFsTest, OverlongNamesBypassTheCacheButResolve) {
  const std::string name(100, 'z');  // > kCacheNameMax, < kMaxName
  auto fd = p().open("/" + name, core::kOpenCreate | core::kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().close(*fd).is_ok());
  (void)delta_stats();
  ASSERT_TRUE(p().stat("/" + name).is_ok());
  ASSERT_TRUE(p().stat("/" + name).is_ok());
  const auto s = delta_stats();
  EXPECT_EQ(s.hits + s.misses + s.fills, 0u);  // never consulted
}

TEST_F(LookupCacheFsTest, RuntimeSwitchDisablesTheCache) {
  ASSERT_TRUE(p().mkdir("/d").is_ok());
  fs_->set_lookup_cache_enabled(false);
  EXPECT_FALSE(fs_->lookup_cache_enabled());
  (void)delta_stats();
  ASSERT_TRUE(p().stat("/d").is_ok());
  ASSERT_TRUE(p().stat("/d").is_ok());
  const auto s = delta_stats();
  EXPECT_EQ(s.hits + s.misses + s.fills, 0u);
  fs_->set_lookup_cache_enabled(true);
  EXPECT_TRUE(fs_->lookup_cache_enabled());
}

TEST_F(LookupCacheFsTest, CacheIsVolatileAcrossRemount) {
  ASSERT_TRUE(p().mkdir("/d").is_ok());
  ASSERT_TRUE(p().stat("/d").is_ok());
  remount_after_crash();
  const auto s = fs_->lookup_cache().stats();
  EXPECT_EQ(s.hits + s.fills, 0u);  // fresh mount starts cold
  ASSERT_TRUE(p().stat("/d").is_ok());  // and refills lazily
  EXPECT_EQ(fs_->lookup_cache().stats().fills, 1u);
}

TEST(LookupCacheEnv, EnvVariablesGateAndSizeTheCache) {
  {
    ::setenv("SIMURGH_LOOKUP_CACHE", "0", 1);
    nvmm::Device dev(64ull << 20), shm(8ull << 20);
    auto fs = core::FileSystem::format(dev, shm);
    EXPECT_FALSE(fs->lookup_cache_enabled());
    ::unsetenv("SIMURGH_LOOKUP_CACHE");
  }
  {
    ::setenv("SIMURGH_LOOKUP_CACHE_SLOTS", "100", 1);
    nvmm::Device dev(64ull << 20), shm(8ull << 20);
    auto fs = core::FileSystem::format(dev, shm);
    EXPECT_TRUE(fs->lookup_cache_enabled());
    EXPECT_EQ(fs->lookup_cache().capacity(), 128u);  // rounded to pow2
    // The whole-path table scales with the same knob (a quarter, floored).
    EXPECT_EQ(fs->path_cache().capacity(), 64u);
    ::unsetenv("SIMURGH_LOOKUP_CACHE_SLOTS");
  }
}

}  // namespace
}  // namespace simurgh::testing
