// Real-thread concurrency: the decentralized protocols under genuine races.
// (The benchmark harness models scalability in virtual time; these tests
// prove the actual lock-free/busy-wait implementations are correct.)
#include <array>
#include <atomic>
#include <barrier>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fs_fixture.h"

namespace simurgh::testing {
namespace {

using core::kOpenCreate;
using core::kOpenExcl;
using core::kOpenRead;
using core::kOpenWrite;

constexpr int kThreads = 8;

TEST_F(FsTest, ConcurrentCreatesInSharedDirectory) {
  ASSERT_TRUE(p().mkdir("/shared").is_ok());
  std::vector<std::unique_ptr<core::Process>> procs;
  for (int t = 0; t < kThreads; ++t) procs.push_back(fs_->open_process(1000, 1000));
  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      for (int i = 0; i < 100; ++i) {
        auto fd = procs[t]->open(
            "/shared/t" + std::to_string(t) + "_" + std::to_string(i),
            kOpenCreate | kOpenWrite);
        if (!fd.is_ok()) ++failures;
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(p().readdir("/shared")->size(),
            static_cast<std::size_t>(kThreads * 100));
}

TEST_F(FsTest, ConcurrentExclusiveCreateOfSameName) {
  // Exactly one winner per name under O_EXCL races.
  ASSERT_TRUE(p().mkdir("/race").is_ok());
  for (int round = 0; round < 20; ++round) {
    std::vector<std::unique_ptr<core::Process>> procs;
    for (int t = 0; t < kThreads; ++t)
      procs.push_back(fs_->open_process(1000, 1000));
    std::barrier sync(kThreads);
    std::atomic<int> winners{0};
    std::vector<std::thread> ts;
    const std::string name = "/race/contested" + std::to_string(round);
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        sync.arrive_and_wait();
        auto fd =
            procs[t]->open(name, kOpenCreate | kOpenExcl | kOpenWrite);
        if (fd.is_ok()) ++winners;
      });
    }
    for (auto& th : ts) th.join();
    EXPECT_EQ(winners.load(), 1) << name;
  }
}

TEST_F(FsTest, ConcurrentCreateAndDeleteInterleaved) {
  ASSERT_TRUE(p().mkdir("/churn").is_ok());
  std::vector<std::unique_ptr<core::Process>> procs;
  for (int t = 0; t < kThreads; ++t) procs.push_back(fs_->open_process(1000, 1000));
  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      const std::string base = "/churn/w" + std::to_string(t) + "_";
      for (int i = 0; i < 60; ++i) {
        const std::string name = base + std::to_string(i);
        if (!procs[t]->open(name, kOpenCreate | kOpenWrite).is_ok())
          ++errors;
        if (!procs[t]->unlink(name).is_ok()) ++errors;
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_TRUE(p().readdir("/churn")->empty());
}

TEST_F(FsTest, ConcurrentRenamesInSharedDirectory) {
  ASSERT_TRUE(p().mkdir("/rn").is_ok());
  for (int t = 0; t < kThreads; ++t)
    ASSERT_TRUE(
        p().open("/rn/file" + std::to_string(t), kOpenCreate | kOpenWrite)
            .is_ok());
  std::vector<std::unique_ptr<core::Process>> procs;
  for (int t = 0; t < kThreads; ++t) procs.push_back(fs_->open_process(1000, 1000));
  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      std::string cur = "/rn/file" + std::to_string(t);
      for (int i = 0; i < 50; ++i) {
        const std::string next =
            "/rn/f" + std::to_string(t) + "_" + std::to_string(i);
        if (!procs[t]->rename(cur, next).is_ok()) ++errors;
        cur = next;
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(p().readdir("/rn")->size(), static_cast<std::size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t)
    EXPECT_TRUE(
        p().stat("/rn/f" + std::to_string(t) + "_49").is_ok());
}

TEST_F(FsTest, ConcurrentCrossDirectoryMoves) {
  ASSERT_TRUE(p().mkdir("/boxa").is_ok());
  ASSERT_TRUE(p().mkdir("/boxb").is_ok());
  for (int t = 0; t < kThreads; ++t)
    ASSERT_TRUE(p().open("/boxa/m" + std::to_string(t),
                         kOpenCreate | kOpenWrite)
                    .is_ok());
  std::vector<std::unique_ptr<core::Process>> procs;
  for (int t = 0; t < kThreads; ++t) procs.push_back(fs_->open_process(1000, 1000));
  std::barrier sync(kThreads);
  std::vector<std::thread> ts;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      sync.arrive_and_wait();
      const std::string name = "m" + std::to_string(t);
      for (int i = 0; i < 30; ++i) {
        const std::string from = (i % 2 == 0 ? "/boxa/" : "/boxb/") + name;
        const std::string to = (i % 2 == 0 ? "/boxb/" : "/boxa/") + name;
        if (!procs[t]->rename(from, to).is_ok()) ++errors;
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(errors.load(), 0);
  // 30 moves (even) => everything back in boxa... moves: i=0 a->b, i=1 b->a,
  // ... i=29 b->a: ends in boxa.
  EXPECT_EQ(p().readdir("/boxa")->size(), static_cast<std::size_t>(kThreads));
  EXPECT_TRUE(p().readdir("/boxb")->empty());
}

TEST_F(FsTest, ConcurrentLookupsDuringChurn) {
  ASSERT_TRUE(p().mkdir("/mix").is_ok());
  for (int i = 0; i < 50; ++i)
    ASSERT_TRUE(p().open("/mix/stable" + std::to_string(i),
                         kOpenCreate | kOpenWrite)
                    .is_ok());
  std::atomic<bool> stop{false};
  std::atomic<int> lookup_errors{0};
  std::thread churn([&] {
    auto proc = fs_->open_process(1000, 1000);
    for (int i = 0; i < 500 && !stop; ++i) {
      const std::string name = "/mix/tmp" + std::to_string(i % 7);
      (void)proc->open(name, kOpenCreate | kOpenWrite);
      (void)proc->unlink(name);
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      auto proc = fs_->open_process(1000, 1000);
      Rng rng(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string name =
            "/mix/stable" + std::to_string(rng.below(50));
        if (!proc->stat(name).is_ok()) ++lookup_errors;
      }
    });
  }
  churn.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(lookup_errors.load(), 0);
}

TEST_F(FsTest, SharedFileConcurrentReaders) {
  auto fd = p().open("/shared.dat", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  std::vector<char> data(64 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<char>(i * 131);
  ASSERT_TRUE(p().pwrite(*fd, data.data(), data.size(), 0).is_ok());
  std::vector<std::thread> ts;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto proc = fs_->open_process(1000, 1000);
      auto rfd = proc->open("/shared.dat", kOpenRead);
      ASSERT_TRUE(rfd.is_ok());
      Rng rng(t);
      char buf[4096];
      for (int i = 0; i < 200; ++i) {
        const std::uint64_t off = rng.below(data.size() - sizeof buf);
        auto r = proc->pread(*rfd, buf, sizeof buf, off);
        if (!r.is_ok() || *r != sizeof buf) {
          ++mismatches;
          continue;
        }
        for (std::size_t k = 0; k < sizeof buf; k += 512)
          if (buf[k] != static_cast<char>((off + k) * 131)) ++mismatches;
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(FsTest, ExclusiveWritersToSharedFileSerialize) {
  auto fd = p().open("/wfile", kOpenCreate | kOpenWrite | kOpenRead);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().ftruncate(*fd, 4096).is_ok());
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto proc = fs_->open_process(1000, 1000);
      auto wfd = proc->open("/wfile", kOpenWrite);
      ASSERT_TRUE(wfd.is_ok());
      // Each writer stamps the whole block with its id; exclusivity means a
      // reader never sees a torn mix *after* all writers finish.
      std::vector<char> blk(4096, static_cast<char>('A' + t));
      for (int i = 0; i < 50; ++i)
        ASSERT_TRUE(proc->pwrite(*wfd, blk.data(), blk.size(), 0).is_ok());
    });
  }
  for (auto& th : ts) th.join();
  char buf[4096];
  ASSERT_TRUE(p().pread(*fd, buf, sizeof buf, 0).is_ok());
  for (std::size_t i = 1; i < sizeof buf; ++i)
    ASSERT_EQ(buf[i], buf[0]) << "torn write at byte " << i;
}

TEST_F(FsTest, ParallelAppendsToPrivateFiles) {
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto proc = fs_->open_process(1000, 1000);
      auto fd = proc->open("/priv" + std::to_string(t),
                           kOpenCreate | kOpenWrite | core::kOpenAppend);
      ASSERT_TRUE(fd.is_ok());
      char blk[1024];
      std::memset(blk, t, sizeof blk);
      for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(proc->write(*fd, blk, sizeof blk).is_ok());
    });
  }
  for (auto& th : ts) th.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(p().stat("/priv" + std::to_string(t))->size, 100u * 1024);
}

TEST_F(FsTest, ConcurrentAppendersToSharedFileNeverOverlap) {
  // Regression: the O_APPEND position used to be read from the inode size
  // *before* the write lock was taken, so two appenders could resolve the
  // same offset and one write would vanish under the other.  The position
  // is now resolved inside do_write, under the lock.
  {
    auto fd = p().open("/applog", kOpenCreate | kOpenWrite);
    ASSERT_TRUE(fd.is_ok());
    ASSERT_TRUE(p().close(*fd).is_ok());
  }
  constexpr int kAppenders = 4;
  constexpr int kOps = 64;
  constexpr std::size_t kChunk = 4096;
  std::barrier gate(kAppenders);
  std::vector<std::thread> ts;
  for (int t = 0; t < kAppenders; ++t) {
    ts.emplace_back([&, t] {
      auto proc = fs_->open_process(1000, 1000);
      auto fd = proc->open("/applog", kOpenWrite | core::kOpenAppend);
      ASSERT_TRUE(fd.is_ok());
      std::vector<char> blk(kChunk, static_cast<char>('A' + t));
      gate.arrive_and_wait();
      for (int i = 0; i < kOps; ++i)
        ASSERT_EQ(*proc->write(*fd, blk.data(), blk.size()), kChunk);
    });
  }
  for (auto& th : ts) th.join();
  // No append may land on another's offset: the file is exactly the sum of
  // all writes, and every writer's bytes are all present.
  const std::uint64_t want = kAppenders * kOps * kChunk;
  ASSERT_EQ(p().stat("/applog")->size, want);
  auto fd = p().open("/applog", core::kOpenRead);
  ASSERT_TRUE(fd.is_ok());
  std::vector<char> all(want);
  ASSERT_EQ(*p().pread(*fd, all.data(), all.size(), 0), all.size());
  std::array<std::uint64_t, kAppenders> per_writer{};
  for (std::size_t i = 0; i < all.size(); i += kChunk) {
    // Each 4 KB record is uniformly one writer's byte (no torn records).
    const int w = all[i] - 'A';
    ASSERT_GE(w, 0);
    ASSERT_LT(w, kAppenders);
    for (std::size_t j = 1; j < kChunk; ++j) ASSERT_EQ(all[i + j], all[i]);
    ++per_writer[w];
  }
  for (int t = 0; t < kAppenders; ++t)
    EXPECT_EQ(per_writer[t], static_cast<std::uint64_t>(kOps));
}

// ---- lookup-cache coherence under churn ----
// The shared DRAM cache (lookup_cache.h) serves warm walks while these
// mutators run; a stale hit would surface as a wrong inode, a resolved
// deleted name, or an inode that was never bound to the name.

TEST_F(FsTest, RenameChurnServesOnlyTheLiveBinding) {
  ASSERT_TRUE(p().mkdir("/cc").is_ok());
  ASSERT_TRUE(p().open("/cc/a", kOpenCreate | kOpenWrite).is_ok());
  const std::uint64_t ino = p().stat("/cc/a")->inode;
  std::atomic<bool> stop{false};
  std::atomic<int> wrong_inode{0};
  // Slot churn in the same directory so a stale fentry binding would get
  // recycled under the cache's feet.
  std::thread churn([&] {
    auto proc = fs_->open_process(1000, 1000);
    for (int i = 0; !stop && i < 400; ++i) {
      const std::string name = "/cc/fill" + std::to_string(i % 5);
      (void)proc->open(name, kOpenCreate | kOpenWrite);
      (void)proc->unlink(name);
    }
  });
  std::thread renamer([&] {
    auto proc = fs_->open_process(1000, 1000);
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(proc->rename("/cc/a", "/cc/b").is_ok());
      ASSERT_TRUE(proc->rename("/cc/b", "/cc/a").is_ok());
    }
    stop = true;
  });
  std::vector<std::thread> statters;
  for (int t = 0; t < 4; ++t) {
    statters.emplace_back([&] {
      auto proc = fs_->open_process(1000, 1000);
      while (!stop.load(std::memory_order_relaxed)) {
        for (const char* path : {"/cc/a", "/cc/b"}) {
          auto st = proc->stat(path);
          if (st.is_ok() && st->inode != ino) ++wrong_inode;
        }
      }
    });
  }
  churn.join();
  renamer.join();
  for (auto& th : statters) th.join();
  EXPECT_EQ(wrong_inode.load(), 0);
  // Quiesced: the final binding is warm and exact.
  EXPECT_EQ(p().stat("/cc/a")->inode, ino);
  EXPECT_FALSE(p().stat("/cc/b").is_ok());
}

TEST_F(FsTest, UnlinkCreateChurnNeverResolvesAForeignInode) {
  ASSERT_TRUE(p().mkdir("/uc").is_ok());
  std::mutex mu;
  std::set<std::uint64_t> ever_bound;  // every inode "/uc/n" ever had
  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    auto proc = fs_->open_process(1000, 1000);
    for (int g = 0; g < 300; ++g) {
      auto fd = proc->open("/uc/n", kOpenCreate | kOpenExcl | kOpenWrite);
      ASSERT_TRUE(fd.is_ok());
      ASSERT_TRUE(proc->close(*fd).is_ok());
      {
        std::lock_guard<std::mutex> lk(mu);
        ever_bound.insert(proc->stat("/uc/n")->inode);
      }
      ASSERT_TRUE(proc->unlink("/uc/n").is_ok());
    }
    stop = true;
  });
  std::vector<std::vector<std::uint64_t>> seen(4);
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      auto proc = fs_->open_process(1000, 1000);
      while (!stop.load(std::memory_order_relaxed)) {
        auto st = proc->stat("/uc/n");
        if (st.is_ok()) seen[t].push_back(st->inode);
      }
    });
  }
  mutator.join();
  for (auto& th : readers) th.join();
  // Checked post-join so recording can trail visibility without a flake: a
  // resolved inode must be one the name really carried at some point.
  for (const auto& v : seen)
    for (std::uint64_t ino : v)
      EXPECT_TRUE(ever_bound.count(ino) != 0) << "stale inode " << ino;
  EXPECT_FALSE(p().stat("/uc/n").is_ok());
}

TEST_F(FsTest, ChmodDuringWarmStatsStaysCoherent) {
  ASSERT_TRUE(p().mkdir("/cm").is_ok());
  ASSERT_TRUE(p().open("/cm/f", kOpenCreate | kOpenWrite).is_ok());
  const std::uint64_t ino = p().stat("/cm/f")->inode;
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread chmodder([&] {
    auto proc = fs_->open_process(1000, 1000);
    for (int i = 0; i < 2000; ++i)
      ASSERT_TRUE(proc->chmod("/cm/f", (i % 2) != 0 ? 0600 : 0644).is_ok());
    stop = true;
  });
  std::vector<std::thread> statters;
  for (int t = 0; t < 4; ++t) {
    statters.emplace_back([&] {
      auto proc = fs_->open_process(1000, 1000);
      while (!stop.load(std::memory_order_relaxed)) {
        auto st = proc->stat("/cm/f");
        // chmod never bumps the dir epoch, so these are warm cache hits —
        // which must still land on the live inode with a current mode.
        if (!st.is_ok() || st->inode != ino ||
            ((st->mode & 0777) != 0600 && (st->mode & 0777) != 0644))
          ++bad;
      }
    });
  }
  chmodder.join();
  for (auto& th : statters) th.join();
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
}  // namespace simurgh::testing
