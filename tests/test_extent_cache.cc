// DRAM extent cache (core/extent_cache.h): epoch-validated views of the
// persistent extent map.  The contract under test: a cached view NEVER
// serves a stale mapping — any extent-map mutation (append, truncate,
// unlink) bumps the inode's epoch and the next resolve re-probes — and a
// cache-on file system is byte-for-byte identical to a cache-off one.
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/extent_cache.h"
#include "fs_fixture.h"

namespace simurgh::testing {
namespace {

using core::kOpenCreate;
using core::kOpenRead;
using core::kOpenWrite;

class ExtentCacheTest : public FsTest {
 protected:
  int make_file(const std::string& path) {
    auto fd = p().open(path, kOpenCreate | kOpenWrite | kOpenRead);
    EXPECT_TRUE(fd.is_ok());
    return *fd;
  }

  // Reads the whole file twice — once with the cache, once without — and
  // requires identical bytes.  The uncached arm probes the persistent map
  // directly, so any divergence convicts the cache.
  void expect_cache_transparent(int fd, std::uint64_t size) {
    std::vector<char> cached(size), direct(size);
    fs_->set_extent_cache_enabled(true);
    ASSERT_EQ(*p().pread(fd, cached.data(), size, 0), size);
    fs_->set_extent_cache_enabled(false);
    ASSERT_EQ(*p().pread(fd, direct.data(), size, 0), size);
    fs_->set_extent_cache_enabled(true);
    ASSERT_EQ(std::memcmp(cached.data(), direct.data(), size), 0);
  }
};

TEST_F(ExtentCacheTest, WarmReadsHitTheCache) {
  const int fd = make_file("/warm");
  std::vector<char> blk(64 * 1024, 'w');
  ASSERT_TRUE(p().pwrite(fd, blk.data(), blk.size(), 0).is_ok());
  fs_->extent_cache().reset_stats();
  std::vector<char> back(blk.size());
  for (int i = 0; i < 10; ++i)
    ASSERT_EQ(*p().pread(fd, back.data(), back.size(), 0), back.size());
  const core::ExtentCacheStats s = fs_->extent_cache().stats();
  // First read fills (the write left the slot invalidated), the rest hit.
  EXPECT_GE(s.hits, 9u);
  EXPECT_EQ(std::memcmp(blk.data(), back.data(), blk.size()), 0);
}

TEST_F(ExtentCacheTest, SparseHolesAcrossSpillChainBoundaries) {
  // Every other block is a hole, so no two extents merge: 200 extents walk
  // well past the 6 inline slots and across the first spill block's 169-
  // extent capacity — the view must stitch inline + chain correctly and
  // report the holes between them.
  const int fd = make_file("/sparse");
  char blk[4096];
  constexpr int kExtents = 200;
  for (int i = 0; i < kExtents; ++i) {
    std::memset(blk, 'a' + (i % 26), sizeof blk);
    ASSERT_TRUE(
        p().pwrite(fd, blk, sizeof blk, 2ull * i * sizeof blk).is_ok());
  }
  const std::uint64_t size = p().stat("/sparse")->size;
  ASSERT_EQ(size, (2ull * (kExtents - 1) + 1) * sizeof blk);
  expect_cache_transparent(fd, size);
  // Spot-check through the cached path: data blocks carry their fill byte,
  // hole blocks read back as zeros.
  char back[4096];
  for (int i : {0, 5, 168, 169, 170, 199}) {
    ASSERT_EQ(*p().pread(fd, back, sizeof back, 2ull * i * sizeof back),
              sizeof back);
    EXPECT_EQ(back[0], 'a' + (i % 26)) << i;
    EXPECT_EQ(back[4095], 'a' + (i % 26)) << i;
  }
  for (int i : {0, 99, 198}) {
    ASSERT_EQ(
        *p().pread(fd, back, sizeof back, (2ull * i + 1) * sizeof back),
        sizeof back);
    EXPECT_EQ(back[0], 0) << i;
    EXPECT_EQ(back[4095], 0) << i;
  }
}

TEST_F(ExtentCacheTest, TruncateMidExtentInvalidatesTheView) {
  const int fd = make_file("/midext");
  std::vector<char> buf(8 * 4096, 'e');
  ASSERT_TRUE(p().pwrite(fd, buf.data(), buf.size(), 0).is_ok());
  // Warm the cache with the 8-block extent.
  std::vector<char> back(buf.size());
  ASSERT_EQ(*p().pread(fd, back.data(), back.size(), 0), back.size());
  // Clip the extent mid-way (5.5 blocks): drop_from trims the mapping, the
  // epoch bump kills the warm view.
  const std::uint64_t cut = 5 * 4096 + 2048;
  ASSERT_TRUE(p().ftruncate(fd, cut).is_ok());
  EXPECT_EQ(p().stat("/midext")->size, cut);
  // Growing the file back over the clipped range must expose zeros, not
  // the old bytes — through the cache.
  ASSERT_TRUE(p().ftruncate(fd, buf.size()).is_ok());
  ASSERT_EQ(*p().pread(fd, back.data(), back.size(), 0), back.size());
  for (std::uint64_t i = 0; i < cut; ++i)
    ASSERT_EQ(back[i], 'e') << "kept byte " << i;
  for (std::uint64_t i = cut; i < back.size(); ++i)
    ASSERT_EQ(back[i], 0) << "beyond old EOF " << i;
  expect_cache_transparent(fd, buf.size());
}

TEST_F(ExtentCacheTest, TruncateToZeroAndRewriteStaysCoherent) {
  // Regression: drop_from leaves zeroed slots inside spill blocks; a view
  // rebuilt after truncate+rewrite once picked those up and masked the
  // fresh extent (run_at resolved a mapped block as a hole).
  const int fd = make_file("/cycle");
  char blk[4096];
  for (int cycle = 0; cycle < 3; ++cycle) {
    // Force the spill chain with 40 unmergeable extents, then wipe.
    for (int i = 0; i < 40; ++i) {
      std::memset(blk, '0' + cycle, sizeof blk);
      ASSERT_TRUE(
          p().pwrite(fd, blk, sizeof blk, 2ull * i * sizeof blk).is_ok());
    }
    ASSERT_TRUE(p().ftruncate(fd, 0).is_ok());
    ASSERT_EQ(p().stat("/cycle")->size, 0u);
    // Rewrite block 0 and read it back through the cache immediately.
    std::memset(blk, 'A' + cycle, sizeof blk);
    ASSERT_TRUE(p().pwrite(fd, blk, sizeof blk, 0).is_ok());
    char back[4096] = {};
    ASSERT_EQ(*p().pread(fd, back, sizeof back, 0), sizeof back);
    EXPECT_EQ(back[0], 'A' + cycle);
    EXPECT_EQ(back[4095], 'A' + cycle);
  }
}

TEST_F(ExtentCacheTest, UnlinkRecreateNeverReplaysTheOldMapping) {
  // A recycled inode offset must not validate against a view cached for
  // the previous file: new files stamp their epoch from a global
  // generation counter (Superblock::file_epoch_gen).
  for (int round = 0; round < 5; ++round) {
    const int fd = make_file("/recycle");
    std::vector<char> buf(16 * 4096, static_cast<char>('a' + round));
    ASSERT_TRUE(p().pwrite(fd, buf.data(), buf.size(), 0).is_ok());
    std::vector<char> back(buf.size());
    ASSERT_EQ(*p().pread(fd, back.data(), back.size(), 0), back.size());
    ASSERT_EQ(std::memcmp(buf.data(), back.data(), buf.size()), 0);
    ASSERT_TRUE(p().close(fd).is_ok());
    ASSERT_TRUE(p().unlink("/recycle").is_ok());
  }
}

TEST_F(ExtentCacheTest, StatsFlowThroughFsstat) {
  const int fd = make_file("/stats");
  std::vector<char> blk(4096, 's');
  ASSERT_TRUE(p().pwrite(fd, blk.data(), blk.size(), 0).is_ok());
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(p().pread(fd, blk.data(), blk.size(), 0).is_ok());
  const core::FsStat st = fs_->fsstat();
  EXPECT_GT(st.extent_hits + st.extent_misses, 0u);
  EXPECT_GT(st.extent_fills, 0u);
}

TEST_F(ExtentCacheTest, DisabledCacheKeepsWorking) {
  fs_->set_extent_cache_enabled(false);
  const int fd = make_file("/nocache");
  std::vector<char> buf(32 * 4096);
  Rng rng(7);
  for (auto& c : buf) c = static_cast<char>(rng.next());
  ASSERT_TRUE(p().pwrite(fd, buf.data(), buf.size(), 0).is_ok());
  std::vector<char> back(buf.size());
  ASSERT_EQ(*p().pread(fd, back.data(), back.size(), 0), back.size());
  EXPECT_EQ(std::memcmp(buf.data(), back.data(), buf.size()), 0);
  fs_->set_extent_cache_enabled(true);
}

}  // namespace
}  // namespace simurgh::testing
