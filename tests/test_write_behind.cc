// Write-behind tier (core/write_behind.h): durability-class semantics,
// telemetry pinning, and crash-image proofs.
//
// The unit half scripts exact write/fsync sequences and pins the FsStat
// counters they must produce (fsyncs_absorbed, group_commits, staged_bytes,
// writeback_backpressure_hits), plus read-your-writes overlays, append
// positions, backpressure fallback, unmount drain, recover() discard
// accounting, O_SYNC strictness, and the fsck armed-journal check.
//
// The crash half runs the epoch drain protocol under the store-tracing
// harness with SIMURGH_WRITEBEHIND_SYNC_DRAIN=1 (every persist happens
// inline on the traced thread, deterministically) and proves the paper-shape
// guarantee: every crash image recovers to an exact PREFIX of the
// group-committed epochs — epoch k visible implies every epoch < k visible,
// and no image shows a torn range.  The suite stages appends/extends (the
// pattern the size-stamp gate makes atomic); in-place overwrites of already
// durable bytes carry the same torn-write caveat as POSIX strict writes and
// are exercised by the overlay unit tests instead.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/check.h"
#include "core/fs.h"
#include "core/layout.h"
#include "core/write_behind.h"
#include "crash_harness.h"
#include "fs_fixture.h"

namespace simurgh::testing {
namespace {

using core::Durability;
using core::kOpenAppend;
using core::kOpenCreate;
using core::kOpenRead;
using core::kOpenSync;
using core::kOpenWrite;

std::string pattern(char c, std::size_t n) { return std::string(n, c); }

// Scoped environment overrides (restored on destruction) for the knobs
// make_write_behind() reads at format/mount time.
class EnvGuard {
 public:
  explicit EnvGuard(
      std::initializer_list<std::pair<const char*, const char*>> kv) {
    for (const auto& [k, v] : kv) {
      const char* old = std::getenv(k);
      saved_.emplace_back(k, old == nullptr
                                 ? std::optional<std::string>{}
                                 : std::optional<std::string>{old});
      ::setenv(k, v, 1);
    }
  }
  ~EnvGuard() {
    for (const auto& [k, v] : saved_) {
      if (v.has_value()) {
        ::setenv(k.c_str(), v->c_str(), 1);
      } else {
        ::unsetenv(k.c_str());
      }
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
};

class WriteBehindTest : public FsTest {
 protected:
  void SetUp() override {
    FsTest::SetUp();
    wb_ = fs_->write_behind();
    ASSERT_NE(wb_, nullptr);
    // Freeze the T-timer: epochs commit only when a test asks
    // (commit_epoch_now / fsync / flush), so every counter is exact.
    wb_->set_interval_us(60'000'000);
  }

  int open_rw(const std::string& path, int extra = 0) {
    auto fd = p().open(path, kOpenCreate | kOpenRead | kOpenWrite | extra);
    EXPECT_TRUE(fd.is_ok());
    return fd.is_ok() ? *fd : -1;
  }

  std::string read_all(const std::string& path) {
    auto fd = p().open(path, kOpenRead);
    EXPECT_TRUE(fd.is_ok());
    if (!fd.is_ok()) return {};
    auto st = p().fstat(*fd);
    EXPECT_TRUE(st.is_ok());
    std::string buf(st->size, '\0');
    auto r = p().pread(*fd, buf.data(), buf.size(), 0);
    EXPECT_TRUE(r.is_ok());
    buf.resize(r.is_ok() ? *r : 0);
    EXPECT_TRUE(p().close(*fd).is_ok());
    return buf;
  }

  core::WriteBehind* wb_ = nullptr;
};

// ---- class management & hot-path gating ----

TEST_F(WriteBehindTest, StrictByDefaultNeverStages) {
  EXPECT_FALSE(wb_->active());
  const int fd = open_rw("/f");
  const std::string data = pattern('x', 300);
  ASSERT_TRUE(p().write(fd, data.data(), data.size()).is_ok());
  ASSERT_TRUE(p().fsync(fd).is_ok());
  ASSERT_TRUE(p().close(fd).is_ok());
  const auto c = wb_->counters();
  EXPECT_EQ(c.staged_writes, 0u);
  EXPECT_EQ(c.staged_bytes, 0u);
  EXPECT_EQ(c.fsyncs_absorbed, 0u);
  EXPECT_FALSE(wb_->active());
}

TEST_F(WriteBehindTest, SetDurabilityErrors) {
  ASSERT_TRUE(p().mkdir("/d").is_ok());
  EXPECT_EQ(p().set_durability("/d", Durability::group).code(), Errc::is_dir);
  EXPECT_EQ(p().set_durability("/missing", Durability::group).code(),
            Errc::not_found);
  const int fd = open_rw("/f");
  ASSERT_TRUE(p().close(fd).is_ok());
  auto ro = p().open("/f", kOpenRead);
  ASSERT_TRUE(ro.is_ok());
  EXPECT_EQ(p().set_durability(*ro, Durability::group).code(), Errc::bad_fd);
  EXPECT_EQ(p().set_durability(999, Durability::group).code(), Errc::bad_fd);
  ASSERT_TRUE(p().close(*ro).is_ok());
  // A non-owner without write permission cannot relax someone else's file.
  ASSERT_TRUE(p().chmod("/f", 0600).is_ok());
  auto other = fs_->open_process(2000, 2000);
  EXPECT_EQ(other->set_durability("/f", Durability::group).code(),
            Errc::permission);
}

TEST_F(WriteBehindTest, SetDurabilityOnDirectoryFdReportsIsDir) {
  ASSERT_TRUE(p().mkdir("/dird").is_ok());
  auto dfd = p().open("/dird", kOpenRead);
  ASSERT_TRUE(dfd.is_ok());
  // The fd form must report what the object IS before how it was opened:
  // a read-only directory fd yields is_dir (matching the path form), not
  // bad_fd for the missing write bit.
  EXPECT_EQ(p().set_durability(*dfd, Durability::group).code(), Errc::is_dir);
  ASSERT_TRUE(p().close(*dfd).is_ok());
}

// ---- telemetry pinning: the scripted sequence of satellite 3 ----

TEST_F(WriteBehindTest, GroupSequencePinsCounters) {
  const int fd = open_rw("/f");
  ASSERT_TRUE(p().set_durability("/f", Durability::group).is_ok());
  EXPECT_TRUE(wb_->active());

  const std::string a = pattern('a', 256), b = pattern('b', 256),
                    c3 = pattern('c', 512);
  ASSERT_TRUE(p().write(fd, a.data(), a.size()).is_ok());
  ASSERT_TRUE(p().fsync(fd).is_ok());  // absorbed
  ASSERT_TRUE(p().write(fd, b.data(), b.size()).is_ok());
  ASSERT_TRUE(p().write(fd, c3.data(), c3.size()).is_ok());
  ASSERT_TRUE(p().fsync(fd).is_ok());  // absorbed

  core::FsStat st = fs_->fsstat();
  EXPECT_EQ(st.fsyncs_absorbed, 2u);
  EXPECT_EQ(st.group_commits, 0u);
  EXPECT_EQ(st.staged_bytes, 1024u);
  EXPECT_EQ(st.writeback_backpressure_hits, 0u);

  // Reads see staged data before any commit.
  EXPECT_EQ(read_all("/f"), a + b + c3);
  EXPECT_EQ(p().stat("/f")->size, 1024u);

  wb_->commit_epoch_now();
  st = fs_->fsstat();
  EXPECT_EQ(st.group_commits, 1u);
  EXPECT_EQ(st.staged_bytes, 0u);
  EXPECT_EQ(read_all("/f"), a + b + c3);  // now from NVMM
  EXPECT_EQ(wb_->counters().drained_bytes, 1024u);
  ASSERT_TRUE(p().close(fd).is_ok());
}

TEST_F(WriteBehindTest, AsyncFsyncForcesTheEpoch) {
  const int fd = open_rw("/f");
  ASSERT_TRUE(p().set_durability("/f", Durability::async).is_ok());
  const std::string d = pattern('z', 640);
  ASSERT_TRUE(p().write(fd, d.data(), d.size()).is_ok());
  EXPECT_EQ(wb_->counters().staged_bytes, 640u);

  // Pending ranges: async fsync seals and awaits — it is NOT absorbed.
  ASSERT_TRUE(p().fsync(fd).is_ok());
  auto c = wb_->counters();
  EXPECT_EQ(c.fsyncs_absorbed, 0u);
  EXPECT_EQ(c.group_commits, 1u);
  EXPECT_EQ(c.staged_bytes, 0u);

  // Nothing in flight: the second fsync absorbs.
  ASSERT_TRUE(p().fsync(fd).is_ok());
  EXPECT_EQ(wb_->counters().fsyncs_absorbed, 1u);
  EXPECT_EQ(read_all("/f"), d);
  ASSERT_TRUE(p().close(fd).is_ok());
}

// ---- read path: overlays, sparse ranges, append positions ----

TEST_F(WriteBehindTest, ReadYourWritesAcrossEpochsNewestWins) {
  const int fd = open_rw("/f");
  ASSERT_TRUE(p().set_durability("/f", Durability::group).is_ok());
  ASSERT_TRUE(p().pwrite(fd, "AAAA", 4, 0).is_ok());
  wb_->commit_epoch_now();  // epoch 1 durable
  ASSERT_TRUE(p().pwrite(fd, "BB", 2, 1).is_ok());  // staged epoch 2
  EXPECT_EQ(read_all("/f"), "ABBA");  // staged overlay over durable base
  wb_->commit_epoch_now();
  EXPECT_EQ(read_all("/f"), "ABBA");
  // Same-epoch overwrite: arrival order, newest wins.
  ASSERT_TRUE(p().pwrite(fd, "xxxx", 4, 0).is_ok());
  ASSERT_TRUE(p().pwrite(fd, "yy", 2, 2).is_ok());
  EXPECT_EQ(read_all("/f"), "xxyy");
  wb_->commit_epoch_now();
  EXPECT_EQ(read_all("/f"), "xxyy");
  ASSERT_TRUE(p().close(fd).is_ok());
}

TEST_F(WriteBehindTest, SparseStagedWriteReadsZerosBelow) {
  const int fd = open_rw("/f");
  ASSERT_TRUE(p().set_durability("/f", Durability::group).is_ok());
  ASSERT_TRUE(p().pwrite(fd, "tail", 4, 100).is_ok());
  EXPECT_EQ(p().stat("/f")->size, 104u);
  std::string got = read_all("/f");
  ASSERT_EQ(got.size(), 104u);
  EXPECT_EQ(got.substr(0, 100), std::string(100, '\0'));
  EXPECT_EQ(got.substr(100), "tail");
  wb_->commit_epoch_now();
  EXPECT_EQ(read_all("/f"), got);
  ASSERT_TRUE(p().close(fd).is_ok());
}

TEST_F(WriteBehindTest, AppendResolvesAgainstStagedSize) {
  const int fd = open_rw("/f", kOpenAppend);
  ASSERT_TRUE(p().set_durability("/f", Durability::group).is_ok());
  const std::string a = pattern('p', 100), b = pattern('q', 50);
  ASSERT_TRUE(p().write(fd, a.data(), a.size()).is_ok());
  ASSERT_TRUE(p().write(fd, b.data(), b.size()).is_ok());
  auto end = p().lseek(fd, 0, core::Process::kSeekEnd);
  ASSERT_TRUE(end.is_ok());
  EXPECT_EQ(*end, 150u);  // staged-inclusive
  EXPECT_EQ(read_all("/f"), a + b);
  wb_->commit_epoch_now();
  EXPECT_EQ(p().stat("/f")->size, 150u);
  EXPECT_EQ(read_all("/f"), a + b);
  ASSERT_TRUE(p().close(fd).is_ok());
}

// ---- bounded memory: backpressure falls back to the strict path ----

TEST_F(WriteBehindTest, BackpressureFlushesThenGoesStrict) {
  wb_->set_max_staged_bytes(1024);
  const int fd = open_rw("/f");
  ASSERT_TRUE(p().set_durability("/f", Durability::group).is_ok());
  const std::string a = pattern('a', 512), b = pattern('b', 1024);
  ASSERT_TRUE(p().write(fd, a.data(), a.size()).is_ok());  // staged
  ASSERT_TRUE(p().write(fd, b.data(), b.size()).is_ok());  // over cap
  const auto c = wb_->counters();
  EXPECT_EQ(c.backpressure_hits, 1u);
  EXPECT_EQ(c.staged_writes, 1u);  // the second write went strict
  EXPECT_EQ(c.group_commits, 1u);  // the inode's own ranges flushed first
  EXPECT_EQ(c.staged_bytes, 0u);
  EXPECT_EQ(fs_->fsstat().writeback_backpressure_hits, 1u);
  EXPECT_EQ(read_all("/f"), a + b);  // ordering preserved
  ASSERT_TRUE(p().close(fd).is_ok());
}

// ---- O_SYNC pins a descriptor to the strict path ----

TEST_F(WriteBehindTest, OSyncDescriptorStaysStrict) {
  const int fd = open_rw("/f");
  ASSERT_TRUE(p().set_durability("/f", Durability::group).is_ok());
  const std::string a = pattern('s', 100);
  ASSERT_TRUE(p().write(fd, a.data(), a.size()).is_ok());  // staged
  EXPECT_EQ(wb_->counters().staged_bytes, 100u);

  const int sfd = open_rw("/f", kOpenSync);
  // The O_SYNC write first flushes the file's staged ranges (ordering),
  // then lands strictly.
  const std::string b = pattern('t', 50);
  ASSERT_TRUE(p().pwrite(sfd, b.data(), b.size(), 100).is_ok());
  auto c = wb_->counters();
  EXPECT_EQ(c.staged_writes, 1u);
  EXPECT_EQ(c.group_commits, 1u);
  EXPECT_EQ(c.staged_bytes, 0u);
  // fsync on the O_SYNC fd is a fence, not an absorb.
  ASSERT_TRUE(p().fsync(sfd).is_ok());
  EXPECT_EQ(wb_->counters().fsyncs_absorbed, 0u);
  EXPECT_EQ(read_all("/f"), a + b);
  ASSERT_TRUE(p().close(sfd).is_ok());
  ASSERT_TRUE(p().close(fd).is_ok());
}

// ---- class transitions ----

TEST_F(WriteBehindTest, DowngradeToStrictFlushesFirst) {
  const int fd = open_rw("/f");
  ASSERT_TRUE(p().set_durability("/f", Durability::group).is_ok());
  const std::string a = pattern('g', 200);
  ASSERT_TRUE(p().write(fd, a.data(), a.size()).is_ok());
  ASSERT_TRUE(p().set_durability("/f", Durability::strict).is_ok());
  auto c = wb_->counters();
  EXPECT_EQ(c.group_commits, 1u);
  EXPECT_EQ(c.staged_bytes, 0u);
  EXPECT_FALSE(wb_->active());
  const std::string b = pattern('h', 100);
  ASSERT_TRUE(p().write(fd, b.data(), b.size()).is_ok());
  EXPECT_EQ(wb_->counters().staged_writes, 1u);  // unchanged: strict now
  EXPECT_EQ(read_all("/f"), a + b);
  ASSERT_TRUE(p().close(fd).is_ok());
}

TEST_F(WriteBehindTest, UnlinkDiscardsResidualStagedRanges) {
  const int fd = open_rw("/f");
  ASSERT_TRUE(p().set_durability("/f", Durability::group).is_ok());
  const std::string a = pattern('u', 300);
  ASSERT_TRUE(p().write(fd, a.data(), a.size()).is_ok());
  ASSERT_TRUE(p().close(fd).is_ok());
  // unlink flushes, forgets the binding, and releases the class slot.
  ASSERT_TRUE(p().unlink("/f").is_ok());
  auto c = wb_->counters();
  EXPECT_EQ(c.staged_bytes, 0u);
  EXPECT_FALSE(wb_->active());
  const core::CheckReport cr = core::check_fs(*fs_);
  EXPECT_TRUE(cr.ok()) << cr.summary();
}

// forget() can scrub every staged range out of the still-OPEN epoch (an
// unlink whose flush raced a concurrent staged write).  The persister must
// seal and retire that empty epoch at its deadline and go back to sleep —
// the regression was an unsealable empty epoch spinning the persister
// forever with mu_ held, wedging every operation on the mount.
TEST_F(WriteBehindTest, EmptyOpenEpochDoesNotWedgePersister) {
  const int fd = open_rw("/f");
  ASSERT_TRUE(p().set_durability("/f", Durability::group).is_ok());
  const std::string a = pattern('e', 128);
  ASSERT_TRUE(p().write(fd, a.data(), a.size()).is_ok());  // opens an epoch
  const std::uint64_t ino_off = p().stat("/f")->inode;
  wb_->forget(ino_off);  // scrubs the open epoch's only ranges
  EXPECT_EQ(wb_->counters().staged_bytes, 0u);
  // Drop the T-deadline under the epoch's age so the persister hits it now.
  wb_->set_interval_us(100);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Liveness probe: mu_ must still be available, an empty drain must not
  // count as a group commit, and staging must keep working.
  auto c = wb_->counters();
  EXPECT_EQ(c.group_commits, 0u);
  const int fd2 = open_rw("/g");
  ASSERT_TRUE(p().set_durability("/g", Durability::group).is_ok());
  ASSERT_TRUE(p().write(fd2, a.data(), a.size()).is_ok());
  wb_->commit_epoch_now();
  EXPECT_EQ(read_all("/g"), a);
  ASSERT_TRUE(p().close(fd2).is_ok());
  ASSERT_TRUE(p().close(fd).is_ok());
}

// Pool residency counts toward max_staged_bytes: a warm recycle arena must
// shed chunks as staged residency grows, never stack a full pool on top of
// a full staging buffer (~2x the configured cap).
TEST_F(WriteBehindTest, PoolResidencyCountsTowardCap) {
  const std::uint64_t cap = 2 * core::kStageChunkBytes;
  wb_->set_max_staged_bytes(cap);
  wb_->prewarm_chunks(cap);
  EXPECT_EQ(wb_->counters().pool_bytes, cap);
  const int fd = open_rw("/f");
  ASSERT_TRUE(p().set_durability("/f", Durability::group).is_ok());
  const std::string a = pattern('p', core::kStageChunkBytes + 4096);
  ASSERT_TRUE(p().write(fd, a.data(), a.size()).is_ok());
  auto c = wb_->counters();
  EXPECT_EQ(c.backpressure_hits, 0u);  // the pool shed; no strict fallback
  EXPECT_EQ(c.staged_writes, 1u);
  EXPECT_LE(c.staged_bytes + c.pool_bytes, cap);
  wb_->commit_epoch_now();
  c = wb_->counters();
  EXPECT_LE(c.staged_bytes + c.pool_bytes, cap);
  EXPECT_EQ(read_all("/f"), a);
  ASSERT_TRUE(p().close(fd).is_ok());
}

// stat on a staged file must pair the staged size with the staged mtime —
// the exact values the drain will stamp — not the pre-stage mtime.
TEST_F(WriteBehindTest, StatSeesStagedMtime) {
  const int fd = open_rw("/f");
  ASSERT_TRUE(p().set_durability("/f", Durability::group).is_ok());
  const std::uint64_t before = p().stat("/f")->mtime_ns;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const std::string a = pattern('m', 64);
  ASSERT_TRUE(p().write(fd, a.data(), a.size()).is_ok());
  const auto staged = p().stat("/f");
  ASSERT_TRUE(staged.is_ok());
  EXPECT_EQ(staged->size, 64u);
  EXPECT_GT(staged->mtime_ns, before);
  wb_->commit_epoch_now();
  // The drain stamped the same mtime the overlay reported.
  EXPECT_EQ(p().stat("/f")->mtime_ns, staged->mtime_ns);
  ASSERT_TRUE(p().close(fd).is_ok());
}

// ---- lifecycle: unmount drains, recover() discards with accounting ----

TEST_F(WriteBehindTest, UnmountDrainsEverythingStaged) {
  const int fd = open_rw("/g");
  const int fd2 = open_rw("/a");
  ASSERT_TRUE(p().set_durability("/g", Durability::group).is_ok());
  ASSERT_TRUE(p().set_durability("/a", Durability::async).is_ok());
  const std::string g = pattern('G', 700), a = pattern('A', 450);
  ASSERT_TRUE(p().write(fd, g.data(), g.size()).is_ok());
  ASSERT_TRUE(p().write(fd2, a.data(), a.size()).is_ok());
  ASSERT_TRUE(p().close(fd).is_ok());
  ASSERT_TRUE(p().close(fd2).is_ok());
  proc_.reset();
  fs_->unmount();
  fs_.reset();
  shm_->wipe();
  fs_ = core::FileSystem::mount(*nvmm_, *shm_);
  proc_ = fs_->open_process(1000, 1000);
  EXPECT_EQ(read_all("/g"), g);
  EXPECT_EQ(read_all("/a"), a);
}

TEST_F(WriteBehindTest, RecoverDiscardsStagedWithAccounting) {
  const int fd = open_rw("/f");
  const std::string base = pattern('B', 64);
  ASSERT_TRUE(p().write(fd, base.data(), base.size()).is_ok());  // strict
  ASSERT_TRUE(p().set_durability("/f", Durability::group).is_ok());
  const std::string staged = pattern('S', 300);
  ASSERT_TRUE(p().write(fd, staged.data(), staged.size()).is_ok());
  EXPECT_EQ(p().stat("/f")->size, 364u);

  const core::RecoveryReport rr = fs_->recover();
  EXPECT_EQ(rr.wb_staged_discarded, 300u);
  EXPECT_EQ(rr.wb_epochs_rolled_forward, 0u);
  EXPECT_EQ(wb_->counters().discarded_bytes, 300u);
  EXPECT_EQ(wb_->counters().staged_bytes, 0u);
  // The acked-but-unsynced staged bytes are gone — the class contract —
  // and the durable prefix survives untorn.
  EXPECT_EQ(p().stat("/f")->size, 64u);
  EXPECT_EQ(read_all("/f"), base);

  // The tier resumed: staging still works after recovery.  (The fd's
  // position reflects the acked-then-lost bytes; write at an explicit
  // offset to land right after the durable prefix.)
  const std::string more = pattern('M', 128);
  ASSERT_TRUE(p().pwrite(fd, more.data(), more.size(), 64).is_ok());
  EXPECT_EQ(wb_->counters().staged_bytes, 128u);
  wb_->commit_epoch_now();
  EXPECT_EQ(read_all("/f"), base + more);
  ASSERT_TRUE(p().close(fd).is_ok());
}

// discard_staged() vs an inline drainer: an async fsync drains on the
// calling thread with mu_ released and a raw pointer into epochs_, so the
// discard must wait for it to retire before destroying the deque (the
// regression was a use-after-free asan catches here).
TEST_F(WriteBehindTest, DiscardWaitsForInlineDrainer) {
  const int fd = open_rw("/f");
  ASSERT_TRUE(p().set_durability("/f", Durability::async).is_ok());
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    auto proc = fs_->open_process(1000, 1000);
    auto wfd = proc->open("/f", kOpenWrite | kOpenAppend);
    ASSERT_TRUE(wfd.is_ok());
    const std::string chunk = pattern('w', 256);
    while (!stop.load(std::memory_order_relaxed)) {
      if (!proc->write(*wfd, chunk.data(), chunk.size()).is_ok()) break;
      if (!proc->fsync(*wfd).is_ok()) break;  // pending async: inline drain
    }
    (void)proc->close(*wfd);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  (void)wb_->discard_staged();  // must not clear epochs_ under the drainer
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  wb_->resume();
  wb_->drain_all();
  const core::CheckReport cr = core::check_fs(*fs_);
  EXPECT_TRUE(cr.ok()) << cr.summary();
  ASSERT_TRUE(p().close(fd).is_ok());
}

// recover() must take the journal's lease lock (stealing from a dead
// holder) before rolling forward: the regression disarmed/committed a
// peer's armed epoch without the lock, racing a live peer's drain protocol.
TEST_F(WriteBehindTest, RecoverStealsJournalLockThenRollsForward) {
  auto& j = *reinterpret_cast<core::WbJournal*>(nvmm_->at(core::kWbJournalOff));
  j.epoch_seq = j.committed_seq.load(std::memory_order_relaxed) + 1;
  j.n_entries = 0;
  j.state.store(core::kWbJournalArmed, std::memory_order_release);
  // A dead peer's lock: foreign token, lease long expired.
  j.lock_token.store(0xdeadbeef, std::memory_order_release);
  j.lock_stamp_ns.store(1, std::memory_order_release);
  const core::RecoveryReport rr = fs_->recover();
  EXPECT_EQ(rr.wb_epochs_rolled_forward, 1u);
  EXPECT_EQ(j.state.load(std::memory_order_acquire), core::kWbJournalIdle);
  // The steal went through the lock and released it afterwards.
  EXPECT_EQ(j.lock_token.load(std::memory_order_acquire), 0u);
  const core::CheckReport cr = core::check_fs(*fs_);
  EXPECT_TRUE(cr.ok()) << cr.summary();
}

// ---- fsck: an armed journal must only appear mid-crash ----

TEST_F(WriteBehindTest, FsckFlagsArmedJournalAndRollForwardClears) {
  auto& j = *reinterpret_cast<core::WbJournal*>(nvmm_->at(core::kWbJournalOff));
  j.epoch_seq = j.committed_seq.load(std::memory_order_relaxed) + 1;
  j.n_entries = 0;
  j.state.store(core::kWbJournalArmed, std::memory_order_release);
  const core::CheckReport bad = core::check_fs(*fs_);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(core::wb_journal_roll_forward(*nvmm_));
  const core::CheckReport good = core::check_fs(*fs_);
  EXPECT_TRUE(good.ok()) << good.summary();
  // Idempotent: a second roll-forward is a no-op.
  EXPECT_FALSE(core::wb_journal_roll_forward(*nvmm_));
}

// ---- concurrency (tsan): staging, fsync, and commits in parallel ----

TEST_F(WriteBehindTest, ConcurrentStagedWritersStayCoherent) {
  constexpr int kThreads = 4;
  constexpr int kWrites = 200;
  constexpr std::size_t kChunk = 64;
  wb_->set_interval_us(200);  // let the persister race the writers
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto proc = fs_->open_process(1000, 1000);
      const std::string path = "/t" + std::to_string(t);
      auto fd = proc->open(path, kOpenCreate | kOpenWrite | kOpenAppend);
      ASSERT_TRUE(fd.is_ok());
      ASSERT_TRUE(
          proc->set_durability(path, t % 2 == 0 ? Durability::group
                                                : Durability::async)
              .is_ok());
      const std::string chunk = pattern(static_cast<char>('0' + t), kChunk);
      for (int i = 0; i < kWrites; ++i) {
        ASSERT_TRUE(proc->write(*fd, chunk.data(), chunk.size()).is_ok());
        if (i % 16 == 0) {
          ASSERT_TRUE(proc->fsync(*fd).is_ok());
        }
      }
      ASSERT_TRUE(proc->close(*fd).is_ok());
    });
  }
  for (auto& t : ts) t.join();
  wb_->drain_all();
  for (int t = 0; t < kThreads; ++t) {
    const std::string path = "/t" + std::to_string(t);
    const std::string got = read_all(path);
    ASSERT_EQ(got.size(), kWrites * kChunk) << path;
    EXPECT_EQ(got, std::string(kWrites * kChunk, static_cast<char>('0' + t)))
        << path;
  }
  EXPECT_EQ(wb_->counters().staged_bytes, 0u);
  const core::CheckReport cr = core::check_fs(*fs_);
  EXPECT_TRUE(cr.ok()) << cr.summary();
}

// ---- crash images: the epoch drain protocol under store tracing ----

// A single staged epoch's commit is all-or-nothing: every crash image at
// every fence boundary of the drain (data stores, journal arm, size stamps,
// commit, disarm) recovers to exactly the pre- or post-epoch namespace.
TEST(WriteBehindCrash, SingleEpochCommitIsAtomic) {
  EnvGuard env{{"SIMURGH_WRITEBEHIND_SYNC_DRAIN", "1"},
               {"SIMURGH_WRITEBEHIND_EPOCH_BYTES", "1073741824"},
               {"SIMURGH_WRITEBEHIND_STAGE_BYTES", "1073741824"}};
  CrashHarness h;
  h.setup([](core::Process& p) {
    ASSERT_TRUE(p.mkdir("/d").is_ok());
    auto fd = p.open("/d/f", kOpenCreate | kOpenWrite);
    ASSERT_TRUE(fd.is_ok());
    ASSERT_TRUE(p.close(*fd).is_ok());
    ASSERT_TRUE(p.set_durability("/d/f", Durability::group).is_ok());
  });
  h.run_op([&h](core::Process& p) {
    auto fd = p.open("/d/f", kOpenWrite | kOpenAppend);
    ASSERT_TRUE(fd.is_ok());
    const std::string data = pattern('E', 128);
    ASSERT_TRUE(p.write(*fd, data.data(), data.size()).is_ok());
    ASSERT_TRUE(p.close(*fd).is_ok());
    h.fs().write_behind()->commit_epoch_now();
  });
  h.explore("write-behind single epoch commit");
  std::cout << "[crash-harness] wb single epoch: " << h.stats() << "\n";
  EXPECT_GT(h.stats().images, 0u);
  EXPECT_GT(h.stats().recovered_to_pre, 0u)
      << "no crash image recovered to the pre-epoch state";
  EXPECT_GT(h.stats().recovered_to_post, 0u)
      << "no crash image recovered to the committed-epoch state";
}

// Multi-epoch prefix consistency: three group commits over mixed
// group/async inodes with a strict append interleaved.  Every sampled
// crash image must recover to one of the acked points, in order — i.e. an
// exact prefix of the committed epochs (epoch k durable => all epochs < k
// durable), never a torn or reordered state.  One commit is driven by the
// async-class fsync (the force-the-epoch path) rather than the timer proxy.
TEST(WriteBehindCrash, MultiEpochRecoversToAckedPrefix) {
  EnvGuard env{{"SIMURGH_WRITEBEHIND_SYNC_DRAIN", "1"},
               {"SIMURGH_WRITEBEHIND_EPOCH_BYTES", "1073741824"},
               {"SIMURGH_WRITEBEHIND_STAGE_BYTES", "1073741824"}};
  CrashHarness h;
  h.setup([](core::Process& p) {
    ASSERT_TRUE(p.mkdir("/d").is_ok());
    for (const char* f : {"/d/g1", "/d/g2", "/d/a1", "/d/s"}) {
      auto fd = p.open(f, kOpenCreate | kOpenWrite);
      ASSERT_TRUE(fd.is_ok());
      ASSERT_TRUE(p.close(*fd).is_ok());
    }
    ASSERT_TRUE(p.set_durability("/d/g1", Durability::group).is_ok());
    ASSERT_TRUE(p.set_durability("/d/g2", Durability::group).is_ok());
    ASSERT_TRUE(p.set_durability("/d/a1", Durability::async).is_ok());
  });

  std::vector<NsSnapshot> mids;
  h.run_op([&h, &mids](core::Process& p) {
    auto append = [&p](const char* path, char c, std::size_t n) {
      auto fd = p.open(path, kOpenWrite | kOpenAppend);
      ASSERT_TRUE(fd.is_ok());
      const std::string data = pattern(c, n);
      ASSERT_TRUE(p.write(*fd, data.data(), data.size()).is_ok());
      ASSERT_TRUE(p.close(*fd).is_ok());
    };
    core::WriteBehind* wb = h.fs().write_behind();

    // Epoch 1: two group inodes and the async inode in one epoch.
    append("/d/g1", 'A', 160);
    append("/d/g2", 'B', 96);
    append("/d/a1", 'C', 128);
    wb->commit_epoch_now();
    mids.push_back(snapshot_namespace(h.fs()));

    // Strict interlude: the default class keeps its own atomicity.
    append("/d/s", 'S', 64);
    mids.push_back(snapshot_namespace(h.fs()));

    // Epoch 2, committed by the async fsync-forces-the-epoch path.
    append("/d/g1", 'D', 200);
    append("/d/a1", 'E', 64);
    {
      auto fd = p.open("/d/a1", kOpenWrite);
      ASSERT_TRUE(fd.is_ok());
      ASSERT_TRUE(p.fsync(*fd).is_ok());  // pending async -> seal + await
      ASSERT_TRUE(p.close(*fd).is_ok());
    }
    mids.push_back(snapshot_namespace(h.fs()));

    // Epoch 3: all three relaxed inodes again.
    append("/d/g2", 'F', 96);
    append("/d/g1", 'G', 48);
    append("/d/a1", 'H', 32);
    wb->commit_epoch_now();
    mids.push_back(snapshot_namespace(h.fs()));
  });

  std::vector<NsSnapshot> oracles;
  oracles.push_back(h.pre());
  for (NsSnapshot& s : mids) oracles.push_back(std::move(s));
  // Nothing was left staged, so the harness's own post snapshot must be the
  // final acked point — a cross-check that the commits really drained.
  ASSERT_EQ(oracles.back(), h.post());

  h.explore_sampled("write-behind epoch prefix", 160, oracles);
  std::cout << "[crash-harness] wb epoch prefix: " << h.stats() << "\n";
  EXPECT_EQ(h.stats().images, 160u);
  EXPECT_GT(h.stats().recovered_to_pre, 0u)
      << "no sampled image recovered to the initial state";
  EXPECT_GT(h.stats().recovered_to_post, 0u)
      << "no sampled image recovered past the first acked point";
}

}  // namespace
}  // namespace simurgh::testing
