// Per-file integrity tests (DESIGN.md §13): the CRC32C residency table,
// verify_reads mode, the background scrubber, and fsck's CRC pass.  The
// acceptance bar is 100% detection: every deliberately flipped bit in live
// file data is caught by all three verifiers.  Corruption is injected on a
// LIVE mount — a remount would run recovery, which legitimately re-derives
// every reachable block's checksum and would mask the injection.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/check.h"
#include "core/scrub.h"
#include "fs_fixture.h"

namespace simurgh::testing {
namespace {

using core::kOpenCreate;
using core::kOpenRead;
using core::kOpenWrite;

class IntegrityTest : public FsTest {
 protected:
  // Device offset of `path`'s logical block `fb` (0 if a hole).
  std::uint64_t block_of(const std::string& path, std::uint64_t fb) {
    const auto st = p().stat(path);
    EXPECT_TRUE(st.is_ok());
    core::Inode* ino = fs_->inode_at(st->inode);
    core::ExtentMap map(fs_->dev(), fs_->pool(core::kPoolExtent), *ino,
                        st->inode);
    return map.find(fb);
  }

  // Flip one byte of the block at `dev_off` behind the FS's back.
  void corrupt(std::uint64_t dev_off, std::uint64_t byte = 100) {
    auto* b = reinterpret_cast<unsigned char*>(fs_->dev().at(dev_off));
    b[byte] ^= 0x5a;
  }

  int make_file(const std::string& path, const std::string& data) {
    auto fd = p().open(path, kOpenCreate | kOpenRead | kOpenWrite);
    EXPECT_TRUE(fd.is_ok());
    EXPECT_TRUE(p().pwrite(*fd, data.data(), data.size(), 0).is_ok());
    return *fd;
  }
};

TEST_F(IntegrityTest, FormatCarvesAndAttachesTheCrcTable) {
  EXPECT_TRUE(fs_->crc().attached());
  EXPECT_NE(fs_->sb().crc_table_off, 0u);
  EXPECT_NE(fs_->sb().crc_table_blocks, 0u);
}

TEST_F(IntegrityTest, WritesStampAndCleanReadsVerify) {
  const int fd = make_file("/clean", std::string(3 * 4096 + 17, 'c'));
  fs_->set_verify_reads(true);
  std::vector<char> buf(3 * 4096 + 17);
  ASSERT_TRUE(p().pread(fd, buf.data(), buf.size(), 0).is_ok());
  EXPECT_EQ(fs_->fsstat().crc_verify_failures, 0u);
  // Stamped entries are non-zero for every written block.
  for (std::uint64_t fb = 0; fb < 4; ++fb)
    EXPECT_NE(fs_->crc().entry(block_of("/clean", fb)), 0u) << fb;
}

TEST_F(IntegrityTest, VerifyReadsDetectsABitFlip) {
  const int fd = make_file("/flip", std::string(2 * 4096, 'f'));
  corrupt(block_of("/flip", 1));
  fs_->set_verify_reads(true);
  std::vector<char> buf(2 * 4096);
  const auto r = p().pread(fd, buf.data(), buf.size(), 0);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Errc::io);
  EXPECT_GE(fs_->fsstat().crc_verify_failures, 1u);
  // The clean block is still readable on its own.
  EXPECT_TRUE(p().pread(fd, buf.data(), 4096, 0).is_ok());
}

TEST_F(IntegrityTest, ScrubberDetectsEveryInjectedCorruption) {
  // A handful of files; flip one byte in a known subset of their blocks.
  constexpr int kFiles = 6;
  constexpr int kBlocksPerFile = 4;
  for (int f = 0; f < kFiles; ++f)
    make_file("/s" + std::to_string(f),
              std::string(kBlocksPerFile * 4096, static_cast<char>('a' + f)));
  std::uint64_t injected = 0;
  for (int f = 0; f < kFiles; f += 2) {  // corrupt every other file
    corrupt(block_of("/s" + std::to_string(f), f % kBlocksPerFile));
    ++injected;
  }
  const core::Scrubber::PassReport r = fs_->scrubber().run_pass();
  EXPECT_EQ(r.errors, injected);  // 100% detection, no false positives
  EXPECT_GE(r.files, static_cast<std::uint64_t>(kFiles));
  const auto msgs = fs_->scrubber().take_errors();
  EXPECT_EQ(msgs.size(), injected);
  const core::FsStat st = fs_->fsstat();
  EXPECT_GE(st.scrub_passes, 1u);
  EXPECT_EQ(st.scrub_errors, injected);
}

TEST_F(IntegrityTest, BackgroundScrubberLoopFindsCorruption) {
  make_file("/bg", std::string(4096, 'b'));
  corrupt(block_of("/bg", 0));
  fs_->scrubber().start(/*pass_interval_ms=*/1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fs_->scrubber().errors() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  fs_->scrubber().stop();
  EXPECT_GE(fs_->scrubber().errors(), 1u);
  EXPECT_GE(fs_->scrubber().passes(), 1u);
}

TEST_F(IntegrityTest, FsckCrcPassDetectsEveryInjectedCorruption) {
  make_file("/fsck1", std::string(4 * 4096, '1'));
  make_file("/fsck2", std::string(4 * 4096, '2'));
  corrupt(block_of("/fsck1", 2));
  corrupt(block_of("/fsck2", 0), 4000);
  const core::CheckReport cr = core::check_fs(*fs_);
  EXPECT_FALSE(cr.ok());
  EXPECT_EQ(cr.crc_mismatches, 2u);
}

TEST_F(IntegrityTest, FsckIsCleanWithoutCorruption) {
  make_file("/ok", std::string(8 * 4096 + 99, 'o'));
  const core::CheckReport cr = core::check_fs(*fs_);
  EXPECT_TRUE(cr.ok()) << cr.summary();
  EXPECT_EQ(cr.crc_mismatches, 0u);
}

TEST_F(IntegrityTest, OverwriteRestampsTheBlock) {
  const int fd = make_file("/ow", std::string(4096, 'x'));
  const std::uint64_t blk = block_of("/ow", 0);
  const std::uint32_t before = fs_->crc().entry(blk);
  std::string next(4096, 'y');
  ASSERT_TRUE(p().pwrite(fd, next.data(), next.size(), 0).is_ok());
  const std::uint32_t after = fs_->crc().entry(blk);
  EXPECT_NE(before, after);
  fs_->set_verify_reads(true);
  std::vector<char> buf(4096);
  EXPECT_TRUE(p().pread(fd, buf.data(), buf.size(), 0).is_ok());
}

TEST_F(IntegrityTest, TruncateTailRezeroKeepsChecksumCoherent) {
  const int fd = make_file("/tr", std::string(2 * 4096, 't'));
  ASSERT_TRUE(p().ftruncate(fd, 4096 + 100).is_ok());
  fs_->set_verify_reads(true);
  std::vector<char> buf(4096 + 100);
  EXPECT_TRUE(p().pread(fd, buf.data(), buf.size(), 0).is_ok());
  const core::CheckReport cr = core::check_fs(*fs_);
  EXPECT_TRUE(cr.ok()) << cr.summary();
}

TEST_F(IntegrityTest, RecoveryRederivesChecksumsAfterCrash) {
  make_file("/crash", std::string(6 * 4096 + 5, 'r'));
  // No clean unmount: the remount runs full recovery, which must re-stamp
  // every reachable file block so all three verifiers come back clean.
  remount_after_crash();
  fs_->set_verify_reads(true);
  const int fd = *p().open("/crash", kOpenRead);
  std::vector<char> buf(6 * 4096 + 5);
  EXPECT_TRUE(p().pread(fd, buf.data(), buf.size(), 0).is_ok());
  EXPECT_EQ(fs_->fsstat().crc_verify_failures, 0u);
  EXPECT_EQ(fs_->scrubber().run_pass().errors, 0u);
  const core::CheckReport cr = core::check_fs(*fs_);
  EXPECT_TRUE(cr.ok()) << cr.summary();
  EXPECT_EQ(cr.crc_mismatches, 0u);
}

TEST_F(IntegrityTest, RecycledBlocksDoNotInheritStaleChecksums) {
  // Delete a stamped file, then create a new one.  Whether or not the
  // allocator hands back the same run, ensure_allocated clears every entry
  // it grants, so a new owner's bytes are never checked against a stale
  // CRC left by the block's previous life.
  const int fd = make_file("/old", std::string(4096, 'o'));
  ASSERT_TRUE(p().close(fd).is_ok());
  ASSERT_TRUE(p().unlink("/old").is_ok());
  const int nf = make_file("/new", std::string(4096, 'n'));
  fs_->set_verify_reads(true);
  std::vector<char> buf(4096);
  EXPECT_TRUE(p().pread(nf, buf.data(), buf.size(), 0).is_ok());
  EXPECT_EQ(fs_->fsstat().crc_verify_failures, 0u);
}

}  // namespace
}  // namespace simurgh::testing
