// Tests for workload generators and end-to-end harness plumbing.
#include <gtest/gtest.h>

#include <set>

#include "baselines/vfs.h"
#include "harness/runner.h"
#include "workloads/filebench.h"
#include "workloads/gitsim.h"
#include "workloads/srctree.h"
#include "workloads/tarsim.h"
#include "workloads/ycsb.h"

namespace simurgh::bench {
namespace {

TEST(SrcTree, DeterministicAndShaped) {
  SrcTreeConfig cfg;
  cfg.scale = 0.01;
  const auto a = make_srctree(cfg);
  const auto b = make_srctree(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97)
    EXPECT_EQ(a[i].path, b[i].path);

  std::uint64_t files = 0, dirs = 0, bytes = 0;
  std::set<std::string> paths;
  for (const auto& f : a) {
    EXPECT_TRUE(paths.insert(f.path).second) << "duplicate " << f.path;
    if (f.is_dir) ++dirs;
    else {
      ++files;
      bytes += f.size;
      EXPECT_GE(f.size, 128u);
      EXPECT_LE(f.size, 1u << 20);
    }
  }
  EXPECT_NEAR(static_cast<double>(files), 670, 10);
  EXPECT_NEAR(static_cast<double>(files) / static_cast<double>(dirs), 8, 3);
  // Mean size roughly 10-20 KB, like a kernel tree.
  EXPECT_GT(bytes / files, 6000u);
  EXPECT_LT(bytes / files, 40000u);
}

TEST(SrcTree, DirectoriesPrecedeTheirFiles) {
  SrcTreeConfig cfg;
  cfg.scale = 0.005;
  const auto tree = make_srctree(cfg);
  std::set<std::string> seen_dirs;
  for (const auto& f : tree) {
    if (f.is_dir) seen_dirs.insert(f.path);
    const std::string parent = parent_of(f.path);
    if (parent != "/") {
      EXPECT_TRUE(seen_dirs.count(parent)) << f.path;
    }
  }
}

TEST(SrcTree, PopulatesAnyBackend) {
  sim::SimWorld world;
  auto fs = make_backend(Backend::nova, world);
  sim::SimThread t;
  SrcTreeConfig cfg;
  cfg.scale = 0.005;
  const auto tree = make_srctree(cfg);
  const std::uint64_t bytes = populate(*fs, t, tree);
  EXPECT_GT(bytes, 0u);
  for (const auto& f : tree)
    EXPECT_TRUE(fs->resolve(t, f.path).is_ok()) << f.path;
}

TEST(Fxmark, EveryVariantProducesThroughputOnEveryBackend) {
  for (Backend b : all_backends()) {
    for (FxOp op : {FxOp::create_private, FxOp::create_shared,
                    FxOp::delete_private, FxOp::rename_shared,
                    FxOp::resolve_private, FxOp::resolve_shared,
                    FxOp::append_private, FxOp::fallocate_private,
                    FxOp::read_shared, FxOp::read_private,
                    FxOp::write_shared, FxOp::write_private}) {
      sim::SimWorld world;
      auto fs = make_backend(b, world);
      FxConfig cfg;
      cfg.threads = 2;
      cfg.ops_per_thread = 20;
      cfg.file_bytes = 1 << 20;
      cfg.falloc_chunk = 64 << 10;
      const double tput = run_fxmark(*fs, op, cfg);
      EXPECT_GT(tput, 0.0) << backend_name(b) << " " << fx_name(op);
    }
  }
}

TEST(Fxmark, SharedCreateScalesOnlyForSimurgh) {
  auto tput = [](Backend b, int threads) {
    sim::SimWorld world;
    auto fs = make_backend(b, world);
    FxConfig cfg;
    cfg.threads = threads;
    cfg.ops_per_thread = 300;
    return run_fxmark(*fs, FxOp::create_shared, cfg);
  };
  const double s1 = tput(Backend::simurgh, 1);
  const double s8 = tput(Backend::simurgh, 8);
  EXPECT_GT(s8 / s1, 4.0) << "Simurgh must scale in a shared directory";
  const double n1 = tput(Backend::nova, 1);
  const double n8 = tput(Backend::nova, 8);
  EXPECT_LT(n8 / n1, 1.5) << "NOVA must serialize in a shared directory";
}

TEST(Fxmark, CachedReadsBeatNvmmBoundReads) {
  sim::SimWorld w1, w2;
  auto a = make_backend(Backend::simurgh, w1);
  auto b = make_backend(Backend::simurgh, w2);
  FxConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 200;
  cfg.file_bytes = 4 << 20;
  cfg.cached_reads = true;
  const double cached = run_fxmark(*a, FxOp::read_private, cfg);
  cfg.cached_reads = false;
  const double bound = run_fxmark(*b, FxOp::read_private, cfg);
  EXPECT_GT(cached, bound * 1.5);
}

TEST(Filebench, AllPersonalitiesRunOnAllBackends) {
  for (Backend b : all_backends()) {
    for (auto kind : {FilebenchKind::varmail, FilebenchKind::webserver,
                      FilebenchKind::webproxy, FilebenchKind::fileserver}) {
      sim::SimWorld world;
      auto fs = make_backend(b, world);
      FilebenchConfig cfg;
      cfg.kind = kind;
      cfg.scale = 0.02;
      cfg.flows_per_thread = 3;
      cfg.threads = 4;
      auto r = run_filebench(*fs, cfg);
      EXPECT_GT(r.ops_per_sec, 0.0)
          << backend_name(b) << " " << filebench_name(kind);
    }
  }
}

TEST(Filebench, VarmailFavorsSimurghOverNova) {
  auto run = [](Backend b) {
    sim::SimWorld world;
    auto fs = make_backend(b, world);
    FilebenchConfig cfg;
    cfg.kind = FilebenchKind::varmail;
    cfg.scale = 0.05;
    cfg.flows_per_thread = 20;
    return run_filebench(*fs, cfg).ops_per_sec;
  };
  EXPECT_GT(run(Backend::simurgh), run(Backend::nova) * 1.3);
}

TEST(Ycsb, WorkloadsRunAndBreakdownSumsToOne) {
  sim::SimWorld world;
  auto fs = make_backend(Backend::simurgh, world);
  YcsbConfig cfg;
  cfg.record_count = 500;
  cfg.ops = 500;
  for (auto w : {YcsbWorkload::load_a, YcsbWorkload::run_a,
                 YcsbWorkload::run_c, YcsbWorkload::run_e}) {
    sim::SimWorld w2;
    auto fs2 = make_backend(Backend::simurgh, w2);
    auto r = run_ycsb(*fs2, w, cfg);
    EXPECT_GT(r.ops_per_sec, 0.0) << ycsb_name(w);
    EXPECT_NEAR(r.frac_app + r.frac_copy + r.frac_fs, 1.0, 1e-9);
  }
  (void)fs;
}

TEST(Ycsb, SimurghFsShareSmall) {
  // Fig. 10's claim, at test scale: the FS share under Simurgh stays low.
  sim::SimWorld world;
  auto fs = make_backend(Backend::simurgh, world);
  YcsbConfig cfg;
  cfg.record_count = 1500;
  cfg.ops = 1500;
  auto r = run_ycsb(*fs, YcsbWorkload::run_a, cfg);
  EXPECT_LT(r.frac_fs, 0.25);
}

TEST(Tar, PackAndUnpackProduceThroughput) {
  sim::SimWorld world;
  auto fs = make_backend(Backend::simurgh, world);
  SrcTreeConfig cfg;
  cfg.scale = 0.005;
  auto r = run_tar(*fs, cfg);
  EXPECT_GT(r.pack_mb_per_sec, 0.0);
  EXPECT_GT(r.unpack_mb_per_sec, 0.0);
  EXPECT_GT(r.bytes, 0u);
}

TEST(Tar, UnpackGapFavorsSimurgh) {
  // Fig. 11: Simurgh unpack ≈ 2x kernel FSs (attribute syscalls per file).
  auto run = [](Backend b) {
    sim::SimWorld world;
    auto fs = make_backend(b, world);
    SrcTreeConfig cfg;
    cfg.scale = 0.005;
    return run_tar(*fs, cfg);
  };
  const auto s = run(Backend::simurgh);
  const auto n = run(Backend::nova);
  EXPECT_GT(s.unpack_mb_per_sec, n.unpack_mb_per_sec * 1.3);
  EXPECT_GT(s.pack_mb_per_sec, n.pack_mb_per_sec);
}

TEST(Git, CommitGapExceedsAddAndResetGaps) {
  // Fig. 12: add/reset are application-bound (small gaps), commit is
  // metadata-bound (large gap).
  auto run = [](Backend b) {
    sim::SimWorld world;
    auto fs = make_backend(b, world);
    SrcTreeConfig cfg;
    cfg.scale = 0.004;
    return run_git(*fs, cfg);
  };
  const auto s = run(Backend::simurgh);
  const auto p = run(Backend::pmfs);
  const double add_gap = s.add_files_per_sec / p.add_files_per_sec;
  const double commit_gap = s.commit_files_per_sec / p.commit_files_per_sec;
  const double reset_gap = s.reset_files_per_sec / p.reset_files_per_sec;
  EXPECT_GT(commit_gap, add_gap);
  EXPECT_GT(commit_gap, reset_gap);
  EXPECT_NEAR(commit_gap, 1.48, 0.35);  // paper: +48% vs PMFS
}

TEST(Harness, SweepProducesSeriesPerBackend) {
  FxConfig cfg;
  cfg.ops_per_thread = 30;
  auto series = sweep_fxmark(FxOp::create_private, cfg,
                             {Backend::simurgh, Backend::nova}, {1, 2});
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].backend, "Simurgh");
  ASSERT_EQ(series[0].points.size(), 2u);
  EXPECT_GT(series[0].points[0].value, 0.0);
  auto table = sweep_table("t", series, {1, 2});
  EXPECT_NE(table.render().find("Simurgh"), std::string::npos);
}

TEST(Harness, BenchScaleDefaultsToOne) {
  ::unsetenv("SIMURGH_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);
  ::setenv("SIMURGH_BENCH_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(bench_scale(), 2.5);
  ::unsetenv("SIMURGH_BENCH_SCALE");
}

}  // namespace
}  // namespace simurgh::bench
