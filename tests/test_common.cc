#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"

namespace simurgh {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), Errc::ok);
}

TEST(Status, CarriesCode) {
  Status s(Errc::not_found);
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), Errc::not_found);
  EXPECT_EQ(errc_name(s.code()), "not_found");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Errc::no_space);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::no_space);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, AssignOrReturnPropagates) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Errc::io;
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    SIMURGH_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 6);
  EXPECT_EQ(outer(true).code(), Errc::io);
}

TEST(Hash, Fnv1aIsStable) {
  // Known-answer: layouts on media depend on this value never changing.
  EXPECT_EQ(fnv1a64("hello"), 0xa430d84680aabd0bull);
  EXPECT_NE(fnv1a64("hello"), fnv1a64("hellp"));
}

TEST(Hash, Mix64SpreadsBits) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ZipfIsSkewedAndInRange) {
  Rng r(11);
  std::map<std::uint64_t, int> counts;
  const std::uint64_t n = 100;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = r.zipf(n);
    ASSERT_LT(v, n);
    ++counts[v];
  }
  // Rank 0 must dominate the tail decisively under theta=0.99.
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(Table, RendersAligned) {
  Table t("demo");
  t.header({"a", "long-col"});
  t.row({"1", "2"});
  t.row({"333", "4"});
  const std::string out = t.render();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("long-col"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(Table, NumFormatsMagnitudes) {
  EXPECT_EQ(Table::num(12345678), "12.35M");
  EXPECT_EQ(Table::num(1234), "1.23k");
  EXPECT_EQ(Table::num(2.5e9), "2.50G");
  EXPECT_EQ(Table::num(0.5), "0.5000");
}

TEST(FailPoint, FiresOnceWhenArmed) {
  FailPoint::arm("t.point");
  EXPECT_THROW(FailPoint::hit("t.point"), CrashedException);
  // One-shot: second hit is a no-op.
  FailPoint::hit("t.point");
  FailPoint::disarm();
}

TEST(FailPoint, SkipCountDelaysFiring) {
  FailPoint::arm("t.skip", 2);
  FailPoint::hit("t.skip");
  FailPoint::hit("t.skip");
  EXPECT_THROW(FailPoint::hit("t.skip"), CrashedException);
  EXPECT_EQ(FailPoint::hits(), 3u);
}

TEST(FailPoint, OtherPointsUnaffected) {
  FailPoint::arm("t.a");
  FailPoint::hit("t.b");  // must not throw
  FailPoint::disarm();
}

// Regression: arm() used to zero a process-global hit counter, so a thread
// arming its own point concurrently with another thread's armed run would
// reset — and pollute — the other thread's count.  Both the armed state and
// the counter are thread-local now.
TEST(FailPoint, HitCountsAreThreadLocal) {
  constexpr int kHitsEach = 1000;
  std::atomic<bool> go{false};
  std::atomic<int> ready{0};
  auto worker = [&](std::string_view point, std::uint64_t* out) {
    ready.fetch_add(1);
    while (!go.load(std::memory_order_acquire)) {}
    for (int i = 0; i < kHitsEach; ++i) {
      // Re-arm every iteration: with the old global counter this reset the
      // other thread's tally mid-count.
      FailPoint::arm(point, /*skip=*/kHitsEach + 1);
      FailPoint::hit(point);
    }
    *out = FailPoint::hits();
    FailPoint::disarm();
  };
  std::uint64_t hits_a = 0, hits_b = 0;
  std::thread ta(worker, "t.tl.a", &hits_a);
  std::thread tb(worker, "t.tl.b", &hits_b);
  while (ready.load() != 2) {}
  go.store(true, std::memory_order_release);
  ta.join();
  tb.join();
  // Each thread re-armed before every hit, so its own count is exactly 1;
  // any cross-thread sharing would show the other thread's hits here.
  EXPECT_EQ(hits_a, 1u);
  EXPECT_EQ(hits_b, 1u);
  // And this thread's own armed state saw none of the workers' hits.
  FailPoint::arm("t.tl.main", /*skip=*/5);
  EXPECT_EQ(FailPoint::hits(), 0u);
  FailPoint::disarm();
}

}  // namespace
}  // namespace simurgh
