// Basic POSIX-level behaviour through the public API.
#include "fs_fixture.h"

namespace simurgh::testing {
namespace {

using core::kOpenAppend;
using core::kOpenCreate;
using core::kOpenExcl;
using core::kOpenRead;
using core::kOpenTrunc;
using core::kOpenWrite;

TEST_F(FsTest, FormatCreatesEmptyRoot) {
  auto entries = p().readdir("/");
  ASSERT_TRUE(entries.is_ok());
  EXPECT_TRUE(entries->empty());
  auto st = p().stat("/");
  ASSERT_TRUE(st.is_ok());
  EXPECT_TRUE(st->is_dir());
}

TEST_F(FsTest, CreateOpenCloseStat) {
  auto fd = p().open("/a.txt", kOpenCreate | kOpenWrite, 0644);
  ASSERT_TRUE(fd.is_ok());
  EXPECT_TRUE(p().close(*fd).is_ok());
  auto st = p().stat("/a.txt");
  ASSERT_TRUE(st.is_ok());
  EXPECT_FALSE(st->is_dir());
  EXPECT_EQ(st->size, 0u);
  EXPECT_EQ(st->uid, 1000u);
  EXPECT_EQ(st->mode & 0xFFF, 0644u);
  EXPECT_EQ(st->nlink, 1u);
}

TEST_F(FsTest, OpenMissingFails) {
  EXPECT_EQ(p().open("/nothing", kOpenRead).code(), Errc::not_found);
}

TEST_F(FsTest, ExclFailsOnExisting) {
  ASSERT_TRUE(p().open("/x", kOpenCreate | kOpenWrite).is_ok());
  EXPECT_EQ(p().open("/x", kOpenCreate | kOpenExcl | kOpenWrite).code(),
            Errc::exists);
}

TEST_F(FsTest, WriteReadRoundTrip) {
  auto fd = p().open("/data", kOpenCreate | kOpenWrite | kOpenRead);
  ASSERT_TRUE(fd.is_ok());
  const std::string msg = "the quick brown fox";
  ASSERT_EQ(*p().write(*fd, msg.data(), msg.size()), msg.size());
  ASSERT_TRUE(p().lseek(*fd, 0, core::Process::kSeekSet).is_ok());
  char buf[64] = {};
  auto r = p().read(*fd, buf, sizeof buf);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(std::string(buf, *r), msg);
}

TEST_F(FsTest, PreadPwriteAtOffsets) {
  auto fd = p().open("/off", kOpenCreate | kOpenWrite | kOpenRead);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().pwrite(*fd, "AAAA", 4, 0).is_ok());
  ASSERT_TRUE(p().pwrite(*fd, "BB", 2, 10).is_ok());
  char buf[12] = {};
  auto r = p().pread(*fd, buf, 12, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r, 12u);
  EXPECT_EQ(std::string(buf, 4), "AAAA");
  EXPECT_EQ(std::string(buf + 4, 6), std::string(6, '\0'));  // hole zeros
  EXPECT_EQ(std::string(buf + 10, 2), "BB");
}

TEST_F(FsTest, AppendFlagWritesAtEof) {
  auto fd = p().open("/log", kOpenCreate | kOpenWrite | kOpenAppend);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().write(*fd, "one", 3).is_ok());
  ASSERT_TRUE(p().write(*fd, "two", 3).is_ok());
  auto st = p().stat("/log");
  ASSERT_TRUE(st.is_ok());
  EXPECT_EQ(st->size, 6u);
  auto rfd = p().open("/log", kOpenRead);
  char buf[8] = {};
  ASSERT_TRUE(p().read(*rfd, buf, 6).is_ok());
  EXPECT_EQ(std::string(buf, 6), "onetwo");
}

TEST_F(FsTest, TruncFlagEmptiesFile) {
  auto fd = p().open("/t", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().write(*fd, "xxxx", 4).is_ok());
  ASSERT_TRUE(p().close(*fd).is_ok());
  auto fd2 = p().open("/t", kOpenWrite | kOpenTrunc);
  ASSERT_TRUE(fd2.is_ok());
  EXPECT_EQ(p().stat("/t")->size, 0u);
}

TEST_F(FsTest, LseekWhenceVariants) {
  auto fd = p().open("/s", kOpenCreate | kOpenWrite | kOpenRead);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().write(*fd, "0123456789", 10).is_ok());
  EXPECT_EQ(*p().lseek(*fd, 2, core::Process::kSeekSet), 2u);
  EXPECT_EQ(*p().lseek(*fd, 3, core::Process::kSeekCur), 5u);
  EXPECT_EQ(*p().lseek(*fd, -4, core::Process::kSeekEnd), 6u);
  char c = 0;
  ASSERT_TRUE(p().read(*fd, &c, 1).is_ok());
  EXPECT_EQ(c, '6');
  EXPECT_EQ(p().lseek(*fd, -100, core::Process::kSeekSet).code(),
            Errc::invalid);
}

TEST_F(FsTest, CloseInvalidatesFd) {
  auto fd = p().open("/c", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().close(*fd).is_ok());
  char b;
  EXPECT_EQ(p().read(*fd, &b, 1).code(), Errc::bad_fd);
  EXPECT_EQ(p().close(*fd).code(), Errc::bad_fd);
}

TEST_F(FsTest, ReadRequiresReadFlag) {
  auto fd = p().open("/w", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  char b;
  EXPECT_EQ(p().read(*fd, &b, 1).code(), Errc::bad_fd);
  EXPECT_EQ(p().pwrite(*fd, "q", 1, 0).code(), Errc::ok);
}

TEST_F(FsTest, WriteRequiresWriteFlag) {
  ASSERT_TRUE(p().open("/r", kOpenCreate | kOpenWrite).is_ok());
  auto fd = p().open("/r", kOpenRead);
  ASSERT_TRUE(fd.is_ok());
  EXPECT_EQ(p().write(*fd, "x", 1).code(), Errc::bad_fd);
}

TEST_F(FsTest, FstatMatchesStat) {
  auto fd = p().open("/f", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().write(*fd, "abc", 3).is_ok());
  auto fst = p().fstat(*fd);
  auto st = p().stat("/f");
  ASSERT_TRUE(fst.is_ok());
  ASSERT_TRUE(st.is_ok());
  EXPECT_EQ(fst->inode, st->inode);
  EXPECT_EQ(fst->size, st->size);
}

TEST_F(FsTest, InodeIdentityIsStablePersistentPointer) {
  // §4.3: the inode offset is the inode id; two lookups agree, distinct
  // files differ.
  ASSERT_TRUE(p().open("/i1", kOpenCreate | kOpenWrite).is_ok());
  ASSERT_TRUE(p().open("/i2", kOpenCreate | kOpenWrite).is_ok());
  EXPECT_EQ(p().stat("/i1")->inode, p().stat("/i1")->inode);
  EXPECT_NE(p().stat("/i1")->inode, p().stat("/i2")->inode);
}

TEST_F(FsTest, UnmountRemountKeepsData) {
  auto fd = p().open("/persist", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().write(*fd, "durable", 7).is_ok());
  ASSERT_TRUE(p().close(*fd).is_ok());
  fs_->unmount();
  proc_.reset();
  fs_.reset();
  fs_ = core::FileSystem::mount(*nvmm_, *shm_);
  proc_ = fs_->open_process(1000, 1000);
  auto rfd = p().open("/persist", kOpenRead);
  ASSERT_TRUE(rfd.is_ok());
  char buf[8] = {};
  ASSERT_TRUE(p().read(*rfd, buf, 7).is_ok());
  EXPECT_EQ(std::string(buf, 7), "durable");
}

TEST_F(FsTest, FsyncSucceedsOnOpenFd) {
  auto fd = p().open("/sync", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  EXPECT_TRUE(p().fsync(*fd).is_ok());
  EXPECT_EQ(p().fsync(9999).code(), Errc::bad_fd);
}

}  // namespace
}  // namespace simurgh::testing
