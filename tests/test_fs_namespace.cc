// Namespace semantics: directories, rename, links, permissions.
#include <algorithm>

#include "fs_fixture.h"

namespace simurgh::testing {
namespace {

using core::kMayRead;
using core::kMayWrite;
using core::kOpenCreate;
using core::kOpenRead;
using core::kOpenWrite;

TEST_F(FsTest, MkdirAndNestedCreate) {
  ASSERT_TRUE(p().mkdir("/a").is_ok());
  ASSERT_TRUE(p().mkdir("/a/b").is_ok());
  ASSERT_TRUE(p().mkdir("/a/b/c").is_ok());
  ASSERT_TRUE(p().open("/a/b/c/file", kOpenCreate | kOpenWrite).is_ok());
  auto st = p().stat("/a/b/c/file");
  ASSERT_TRUE(st.is_ok());
  EXPECT_FALSE(st->is_dir());
  EXPECT_EQ(p().stat("/a/b")->mode & core::kModeTypeMask, core::kModeDir);
}

TEST_F(FsTest, MkdirExistingFails) {
  ASSERT_TRUE(p().mkdir("/dup").is_ok());
  EXPECT_EQ(p().mkdir("/dup").code(), Errc::exists);
}

TEST_F(FsTest, MkdirUnderMissingParentFails) {
  EXPECT_EQ(p().mkdir("/no/such/parent").code(), Errc::not_found);
}

TEST_F(FsTest, CreateUnderFileFails) {
  ASSERT_TRUE(p().open("/plain", kOpenCreate | kOpenWrite).is_ok());
  EXPECT_EQ(p().open("/plain/child", kOpenCreate | kOpenWrite).code(),
            Errc::not_dir);
}

TEST_F(FsTest, RmdirOnlyWhenEmpty) {
  ASSERT_TRUE(p().mkdir("/d").is_ok());
  ASSERT_TRUE(p().open("/d/f", kOpenCreate | kOpenWrite).is_ok());
  EXPECT_EQ(p().rmdir("/d").code(), Errc::not_empty);
  ASSERT_TRUE(p().unlink("/d/f").is_ok());
  EXPECT_TRUE(p().rmdir("/d").is_ok());
  EXPECT_EQ(p().stat("/d").code(), Errc::not_found);
}

TEST_F(FsTest, UnlinkDirectoryFails) {
  ASSERT_TRUE(p().mkdir("/dir").is_ok());
  EXPECT_EQ(p().unlink("/dir").code(), Errc::is_dir);
  EXPECT_EQ(p().rmdir("/missingdir").code(), Errc::not_found);
}

TEST_F(FsTest, ReaddirListsChildren) {
  ASSERT_TRUE(p().mkdir("/ls").is_ok());
  for (int i = 0; i < 25; ++i)
    ASSERT_TRUE(
        p().open("/ls/f" + std::to_string(i), kOpenCreate | kOpenWrite)
            .is_ok());
  auto entries = p().readdir("/ls");
  ASSERT_TRUE(entries.is_ok());
  EXPECT_EQ(entries->size(), 25u);
  auto has = [&](const std::string& n) {
    return std::any_of(entries->begin(), entries->end(),
                       [&](const core::DirEntry& e) { return e.name == n; });
  };
  EXPECT_TRUE(has("f0"));
  EXPECT_TRUE(has("f24"));
  EXPECT_FALSE(has("f25"));
}

TEST_F(FsTest, RenameWithinDirectory) {
  ASSERT_TRUE(p().open("/old", kOpenCreate | kOpenWrite).is_ok());
  const auto ino = p().stat("/old")->inode;
  ASSERT_TRUE(p().rename("/old", "/new").is_ok());
  EXPECT_EQ(p().stat("/old").code(), Errc::not_found);
  EXPECT_EQ(p().stat("/new")->inode, ino);
}

TEST_F(FsTest, RenameAcrossDirectories) {
  ASSERT_TRUE(p().mkdir("/src").is_ok());
  ASSERT_TRUE(p().mkdir("/dst").is_ok());
  ASSERT_TRUE(p().open("/src/file", kOpenCreate | kOpenWrite).is_ok());
  const auto ino = p().stat("/src/file")->inode;
  ASSERT_TRUE(p().rename("/src/file", "/dst/moved").is_ok());
  EXPECT_EQ(p().stat("/src/file").code(), Errc::not_found);
  EXPECT_EQ(p().stat("/dst/moved")->inode, ino);
  EXPECT_TRUE(p().readdir("/src")->empty());
}

TEST_F(FsTest, RenameReplacesExistingFile) {
  auto fd = p().open("/a1", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().write(*fd, "AAA", 3).is_ok());
  ASSERT_TRUE(p().open("/b1", kOpenCreate | kOpenWrite).is_ok());
  ASSERT_TRUE(p().rename("/a1", "/b1").is_ok());
  auto rfd = p().open("/b1", kOpenRead);
  ASSERT_TRUE(rfd.is_ok());
  char buf[4] = {};
  ASSERT_TRUE(p().read(*rfd, buf, 3).is_ok());
  EXPECT_EQ(std::string(buf, 3), "AAA");
  EXPECT_EQ(p().stat("/a1").code(), Errc::not_found);
}

TEST_F(FsTest, RenameDirOverNonEmptyDirFails) {
  ASSERT_TRUE(p().mkdir("/m1").is_ok());
  ASSERT_TRUE(p().mkdir("/m2").is_ok());
  ASSERT_TRUE(p().open("/m2/x", kOpenCreate | kOpenWrite).is_ok());
  EXPECT_EQ(p().rename("/m1", "/m2").code(), Errc::not_empty);
}

TEST_F(FsTest, RenameFileOverDirFails) {
  ASSERT_TRUE(p().open("/rf", kOpenCreate | kOpenWrite).is_ok());
  ASSERT_TRUE(p().mkdir("/rd").is_ok());
  EXPECT_EQ(p().rename("/rf", "/rd").code(), Errc::is_dir);
}

TEST_F(FsTest, HardLinkSharesInode) {
  auto fd = p().open("/orig", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().write(*fd, "shared", 6).is_ok());
  ASSERT_TRUE(p().link("/orig", "/alias").is_ok());
  EXPECT_EQ(p().stat("/alias")->inode, p().stat("/orig")->inode);
  EXPECT_EQ(p().stat("/orig")->nlink, 2u);
  // Deleting one name keeps the data alive.
  ASSERT_TRUE(p().unlink("/orig").is_ok());
  EXPECT_EQ(p().stat("/alias")->nlink, 1u);
  auto rfd = p().open("/alias", kOpenRead);
  char buf[6];
  ASSERT_TRUE(p().read(*rfd, buf, 6).is_ok());
  EXPECT_EQ(std::string(buf, 6), "shared");
}

TEST_F(FsTest, SymlinkResolutionAndReadlink) {
  auto fd = p().open("/target", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().write(*fd, "pointee", 7).is_ok());
  ASSERT_TRUE(p().symlink("/target", "/ln").is_ok());
  EXPECT_EQ(*p().readlink("/ln"), "/target");
  // stat follows, lstat does not.
  EXPECT_EQ(p().stat("/ln")->inode, p().stat("/target")->inode);
  EXPECT_TRUE(p().lstat("/ln")->is_symlink());
  auto rfd = p().open("/ln", kOpenRead);
  ASSERT_TRUE(rfd.is_ok());
  char buf[7];
  ASSERT_TRUE(p().read(*rfd, buf, 7).is_ok());
  EXPECT_EQ(std::string(buf, 7), "pointee");
}

TEST_F(FsTest, RelativeSymlinkWithinDirectory) {
  ASSERT_TRUE(p().mkdir("/dir1").is_ok());
  ASSERT_TRUE(p().open("/dir1/real", kOpenCreate | kOpenWrite).is_ok());
  ASSERT_TRUE(p().symlink("real", "/dir1/rel").is_ok());
  EXPECT_EQ(p().stat("/dir1/rel")->inode, p().stat("/dir1/real")->inode);
}

TEST_F(FsTest, SymlinkLoopDetected) {
  ASSERT_TRUE(p().symlink("/loop_b", "/loop_a").is_ok());
  ASSERT_TRUE(p().symlink("/loop_a", "/loop_b").is_ok());
  EXPECT_EQ(p().stat("/loop_a").code(), Errc::too_many_links);
}

TEST_F(FsTest, SymlinkSelfLoopTerminates) {
  // The tightest loop: a link naming itself.  The walk must fail with
  // too_many_links after kMaxSymlinkDepth restarts, never recurse forever,
  // and the link object itself must stay reachable via lstat.
  ASSERT_TRUE(p().symlink("/self", "/self").is_ok());
  EXPECT_EQ(p().stat("/self").code(), Errc::too_many_links);
  EXPECT_EQ(p().open("/self", kOpenRead).code(), Errc::too_many_links);
  auto st = p().lstat("/self");
  ASSERT_TRUE(st.is_ok());
  EXPECT_TRUE(st->is_symlink());
  EXPECT_EQ(*p().readlink("/self"), "/self");
  // A relative self-loop exercises the sub-walker restart path too.
  ASSERT_TRUE(p().mkdir("/sd").is_ok());
  ASSERT_TRUE(p().symlink("me", "/sd/me").is_ok());
  EXPECT_EQ(p().stat("/sd/me").code(), Errc::too_many_links);
}

TEST_F(FsTest, LongSymlinkTargetViaDataBlock) {
  const std::string long_target = "/" + std::string(500, 'x');
  ASSERT_TRUE(p().symlink(long_target, "/longln").is_ok());
  EXPECT_EQ(*p().readlink("/longln"), long_target);
}

TEST_F(FsTest, DotAndDotDotResolution) {
  ASSERT_TRUE(p().mkdir("/pp").is_ok());
  ASSERT_TRUE(p().mkdir("/pp/qq").is_ok());
  ASSERT_TRUE(p().open("/pp/file", kOpenCreate | kOpenWrite).is_ok());
  EXPECT_EQ(p().stat("/pp/qq/../file")->inode, p().stat("/pp/file")->inode);
  EXPECT_EQ(p().stat("/pp/./file")->inode, p().stat("/pp/file")->inode);
  EXPECT_EQ(p().stat("/..")->inode, p().stat("/")->inode);
}

TEST_F(FsTest, PermissionEnforcement) {
  ASSERT_TRUE(p().open("/secret", kOpenCreate | kOpenWrite, 0600).is_ok());
  auto other = fs_->open_process(2000, 2000);
  EXPECT_EQ(other->open("/secret", kOpenRead).code(), Errc::permission);
  EXPECT_EQ(other->access("/secret", kMayRead).code(), Errc::permission);
  // Owner can read; root can always read.
  EXPECT_TRUE(p().access("/secret", kMayRead).is_ok());
  auto root = fs_->open_process(0, 0);
  EXPECT_TRUE(root->open("/secret", kOpenRead).is_ok());
}

TEST_F(FsTest, DirectoryExecRequiredForTraversal) {
  ASSERT_TRUE(p().mkdir("/locked", 0700).is_ok());
  ASSERT_TRUE(p().open("/locked/f", kOpenCreate | kOpenWrite).is_ok());
  auto other = fs_->open_process(2000, 2000);
  EXPECT_EQ(other->stat("/locked/f").code(), Errc::permission);
}

TEST_F(FsTest, ChmodChangesBitsAndRequiresOwner) {
  ASSERT_TRUE(p().open("/cm", kOpenCreate | kOpenWrite, 0600).is_ok());
  auto other = fs_->open_process(2000, 2000);
  EXPECT_EQ(other->chmod("/cm", 0644).code(), Errc::permission);
  ASSERT_TRUE(p().chmod("/cm", 0644).is_ok());
  EXPECT_EQ(p().stat("/cm")->mode & 0xFFF, 0644u);
  EXPECT_TRUE(other->access("/cm", kMayRead).is_ok());
}

TEST_F(FsTest, ChownRootOnly) {
  ASSERT_TRUE(p().open("/co", kOpenCreate | kOpenWrite).is_ok());
  EXPECT_EQ(p().chown("/co", 1, 1).code(), Errc::permission);
  auto root = fs_->open_process(0, 0);
  ASSERT_TRUE(root->chown("/co", 1, 1).is_ok());
  EXPECT_EQ(p().stat("/co")->uid, 1u);
}

TEST_F(FsTest, UtimesSetsTimestamps) {
  ASSERT_TRUE(p().open("/ut", kOpenCreate | kOpenWrite).is_ok());
  ASSERT_TRUE(p().utimes("/ut", 111, 222).is_ok());
  auto st = p().stat("/ut");
  EXPECT_EQ(st->atime_ns, 111u);
  EXPECT_EQ(st->mtime_ns, 222u);
}

TEST_F(FsTest, NameTooLongRejected) {
  const std::string long_name = "/" + std::string(300, 'n');
  EXPECT_EQ(p().open(long_name, kOpenCreate | kOpenWrite).code(),
            Errc::invalid);
}

TEST_F(FsTest, ManyFilesInSharedDirectory) {
  // Exercises hash-line chaining at the POSIX level (the FxMark shared-dir
  // shape at small scale).
  ASSERT_TRUE(p().mkdir("/shared").is_ok());
  for (int i = 0; i < 2000; ++i)
    ASSERT_TRUE(p().open("/shared/f" + std::to_string(i),
                         kOpenCreate | kOpenWrite)
                    .is_ok())
        << i;
  EXPECT_EQ(p().readdir("/shared")->size(), 2000u);
  for (int i = 0; i < 2000; i += 101)
    EXPECT_TRUE(p().stat("/shared/f" + std::to_string(i)).is_ok());
  for (int i = 0; i < 2000; ++i)
    ASSERT_TRUE(p().unlink("/shared/f" + std::to_string(i)).is_ok()) << i;
  EXPECT_TRUE(p().readdir("/shared")->empty());
}

}  // namespace
}  // namespace simurgh::testing
