// Tests for the virtual-time execution engine.
#include <gtest/gtest.h>

#include "sim/desim.h"

namespace simurgh::sim {
namespace {

TEST(SimThread, CpuAdvancesClock) {
  SimThread t;
  t.cpu(100);
  t.cpu(50);
  EXPECT_EQ(t.now(), 150u);
}

TEST(SimThread, AttributionBuckets) {
  SimThread t;
  t.cpu(10);  // default bucket: fs
  {
    SimThread::Scope app(t, SimThread::Attr::app);
    t.cpu(20);
    {
      SimThread::Scope copy(t, SimThread::Attr::data_copy);
      t.cpu(5);
    }
    t.cpu(1);
  }
  EXPECT_EQ(t.bucket(SimThread::Attr::fs), 10u);
  EXPECT_EQ(t.bucket(SimThread::Attr::app), 21u);
  EXPECT_EQ(t.bucket(SimThread::Attr::data_copy), 5u);
}

TEST(Resource, ExclusiveContentionQueues) {
  Resource m;
  SimThread a(0), b(1);
  a.acquire(m);
  a.cpu(100);
  a.release(m);
  // b arrives at t=0 but the lock frees at t=100.
  b.acquire(m);
  EXPECT_EQ(b.now(), 100u);
  EXPECT_EQ(b.wait_cycles(), 100u);
}

TEST(Resource, SharedAcquiresOverlapButBounce) {
  Resource m(10);  // 10-cycle lock-word bounce
  SimThread a(0), b(1);
  // First touch: the word's cacheline is foreign -> full 2 x bounce.
  a.acquire_shared(m);
  EXPECT_EQ(a.now(), 20u);
  // A different thread always pays the cacheline transfer and serializes
  // on the word (not on the hold — readers overlap).
  b.acquire_shared(m);
  EXPECT_EQ(b.now(), 40u);
  SimThread c(2);
  c.acquire_shared(m);
  EXPECT_EQ(c.now(), 60u);
  // Same-owner re-acquire: word already local -> bounce/4.
  a.release_shared(m);
  c.set_now(100);
  c.acquire_shared(m);
  EXPECT_EQ(c.now(), 102u);
}

TEST(Resource, WriterWaitsForReaders) {
  Resource m;
  SimThread r(0), w(1);
  r.acquire_shared(m);
  r.cpu(200);
  r.release_shared(m);
  w.acquire(m);
  EXPECT_GE(w.now(), 200u);
}

TEST(Resource, TryAcquireFailsWhileHeld) {
  Resource m;
  SimThread a(0), b(1);
  EXPECT_TRUE(a.try_acquire(m));
  EXPECT_FALSE(b.try_acquire(m));
  a.cpu(10);
  a.release(m);
  b.set_now(20);
  EXPECT_TRUE(b.try_acquire(m));
}

TEST(Bandwidth, CapsAggregateThroughput) {
  Bandwidth bw(1.0, 0);  // 1 byte/cycle
  SimThread a(0), b(1);
  a.transfer(bw, 1000);
  b.transfer(bw, 1000);
  // FIFO pipe: second transfer finishes at ~2000 regardless of start time
  // (+1 cycle/transfer from conservative service-time rounding).
  EXPECT_NEAR(static_cast<double>(a.now()), 1000, 2);
  EXPECT_NEAR(static_cast<double>(b.now()), 2000, 3);
  EXPECT_EQ(bw.total_bytes(), 2000u);
}

TEST(Bandwidth, LatencyAddsPerTransfer) {
  Bandwidth bw(1.0, 300);
  SimThread a(0);
  a.transfer(bw, 100);
  EXPECT_GE(a.now(), 400u);
}

TEST(Executor, RunsAllOpsAndCountsThem) {
  auto mk = [](int n) {
    return [n, done = 0](SimThread& t) mutable {
      if (done >= n) return false;
      t.cpu(10);
      ++done;
      return true;
    };
  };
  auto res = Executor::run({mk(5), mk(3)});
  EXPECT_EQ(res.total_ops, 8u);
  EXPECT_EQ(res.ops_per_thread[0], 5u);
  EXPECT_EQ(res.ops_per_thread[1], 3u);
  EXPECT_EQ(res.end_time, 50u);
}

TEST(Executor, LowestClockRunsFirst) {
  // Thread B's ops are cheap; it should complete many before A's second op.
  std::vector<int> order;
  int a_done = 0, b_done = 0;
  auto res = Executor::run(
      {[&](SimThread& t) {
         if (a_done++ >= 2) return false;
         order.push_back(0);
         t.cpu(100);
         return true;
       },
       [&](SimThread& t) {
         if (b_done++ >= 4) return false;
         order.push_back(1);
         t.cpu(10);
         return true;
       }});
  // After A's first op (t=100), B runs its 4 ops (t=10..40) before A again.
  EXPECT_EQ(res.total_ops, 6u);
  std::vector<int> expect = {0, 1, 1, 1, 1, 0};
  EXPECT_EQ(order, expect);
}

TEST(Executor, TimeLimitStopsThreads) {
  auto res = Executor::run({[](SimThread& t) {
                             t.cpu(10);
                             return true;  // endless stream
                           }},
                           1000);
  EXPECT_LE(res.end_time, 1010u);
  EXPECT_GE(res.total_ops, 99u);
}

TEST(Executor, ContentionEmergesAcrossThreads) {
  // N threads hammer one lock with 100-cycle holds: aggregate throughput
  // must stay flat as threads grow (the kernel-FS shared-dir shape).
  auto run_n = [&](int n) {
    SimWorld world;  // fresh lock per experiment
    Resource& m = world.mutex("dir");
    std::vector<Executor::ThreadFn> fns;
    for (int i = 0; i < n; ++i) {
      fns.push_back([&m, done = 0](SimThread& t) mutable {
        if (done++ >= 50) return false;
        t.acquire(m);
        t.cpu(100);
        t.release(m);
        return true;
      });
    }
    auto r = Executor::run(std::move(fns));
    return r.ops_per_sec(1e9);
  };
  const double t1 = run_n(1);
  const double t4 = run_n(4);
  EXPECT_NEAR(t4 / t1, 1.0, 0.25);  // serialized: no scaling
}

TEST(Executor, OpsPerSecUsesModeledClock) {
  auto res = Executor::run({[done = 0](SimThread& t) mutable {
    if (done++ >= 10) return false;
    t.cpu(1000);
    return true;
  }});
  // 10 ops in 10k cycles at 2.5 GHz = 2.5M ops/s.
  EXPECT_NEAR(res.ops_per_sec(kClockHz), 2.5e6, 1e3);
}

}  // namespace
}  // namespace simurgh::sim
