// Crash-injection tests for the Fig. 5 protocols: a process dies at each
// labeled step boundary; the paper's claimed outcome must hold after either
// helper completion (a survivor touching the same line) or full recovery.
#include "common/failpoint.h"
#include "fs_fixture.h"

namespace simurgh::testing {
namespace {

using core::kOpenCreate;
using core::kOpenRead;
using core::kOpenWrite;

class FsCrashTest : public FsTest {
 protected:
  void SetUp() override {
    FsTest::SetUp();
    fs_->set_lease_ns(2'000'000);  // 2 ms: survivors steal quickly
    fsck_on_teardown_ = true;
  }
  void TearDown() override {
    FailPoint::disarm();
    FsTest::TearDown();  // recover + fsck the surviving image
  }

  // Runs `op` expecting the armed fail point to fire.
  template <typename Fn>
  void crash_during(std::string_view point, Fn&& op, int skip = 0) {
    FailPoint::arm(point, skip);
    EXPECT_THROW(op(), CrashedException);
    ASSERT_GE(FailPoint::hits(), 1u) << "fail point never reached: " << point;
  }
};

// ---- create (Fig. 5a) ----

TEST_F(FsCrashTest, CreateCrashBeforePublishLeavesNoFile) {
  // Crash after inode+entry persisted but before the slot publish (step 5):
  // "the file is not created and no crash recovery is needed" — the
  // allocated objects are reclaimed by the metadata allocator (sweep).
  crash_during("dir.insert.before_publish", [&] {
    (void)p().open("/victim", kOpenCreate | kOpenWrite);
  });
  auto survivor = fs_->open_process(1000, 1000);
  EXPECT_EQ(survivor->stat("/victim").code(), Errc::not_found);
  // A survivor can create the same name (the abandoned line lock is
  // lease-stolen).
  EXPECT_TRUE(
      survivor->open("/victim", kOpenCreate | kOpenWrite).is_ok());
}

TEST_F(FsCrashTest, CreateCrashAfterPublishYieldsFileAfterRecovery) {
  // Crash after step 5: the entry is visible but its dirty bits were never
  // cleared (step 6 missing); recovery commits the in-flight create.
  crash_during("dir.insert.after_publish", [&] {
    (void)p().open("/published", kOpenCreate | kOpenWrite);
  });
  auto survivor = fs_->open_process(1000, 1000);
  EXPECT_TRUE(survivor->stat("/published").is_ok());
  remount_after_crash();
  EXPECT_TRUE(p().stat("/published").is_ok());
  // After recovery the objects are committed (no dirty bits linger).
  const auto st = p().stat("/published");
  EXPECT_EQ(fs_->pool(core::kPoolInode).flags_of(st->inode),
            alloc::kObjValid);
}

TEST_F(FsCrashTest, CreateCrashReclaimsOrphanObjectsOnRecovery) {
  crash_during("dir.insert.before_publish", [&] {
    (void)p().open("/orphan", kOpenCreate | kOpenWrite);
  });
  auto report = [&] {
    remount_after_crash();
    // mount() already ran recover() (unclean shutdown); run again to show
    // idempotence and read the report of a clean pass.
    return fs_->recover();
  }();
  EXPECT_EQ(report.reclaimed_objects, 0u);  // second pass finds nothing
  EXPECT_EQ(p().stat("/orphan").code(), Errc::not_found);
}

// ---- delete (Fig. 5b) ----

class FsCrashDeleteTest : public FsCrashTest,
                          public ::testing::WithParamInterface<const char*> {};

TEST_P(FsCrashDeleteTest, SurvivorCompletesInterruptedDelete) {
  // "If the process crashes in between Steps 2 to 5, the next process
  // accessing the same line identifies a null pointer and completes the
  // remaining steps for deletion."
  ASSERT_TRUE(p().open("/doomed", kOpenCreate | kOpenWrite).is_ok());
  crash_during(GetParam(), [&] { (void)p().unlink("/doomed"); });
  auto survivor = fs_->open_process(1000, 1000);
  // The survivor's lookup of the same name finishes the delete.
  EXPECT_EQ(survivor->stat("/doomed").code(), Errc::not_found);
  // And the name is reusable.
  EXPECT_TRUE(survivor->open("/doomed", kOpenCreate | kOpenWrite).is_ok());
}

INSTANTIATE_TEST_SUITE_P(DeleteSteps, FsCrashDeleteTest,
                         ::testing::Values("dir.remove.entry_invalidated",
                                           "dir.remove.entry_zeroed",
                                           "dir.remove.slot_cleared"));

TEST_F(FsCrashTest, DeleteCrashRecoveredByFullRecovery) {
  ASSERT_TRUE(p().open("/doomed2", kOpenCreate | kOpenWrite).is_ok());
  crash_during("dir.remove.entry_invalidated",
               [&] { (void)p().unlink("/doomed2"); });
  remount_after_crash();
  EXPECT_EQ(p().stat("/doomed2").code(), Errc::not_found);
}

// ---- intra-directory rename (Fig. 5c) ----

class FsCrashRenameTest : public FsCrashTest,
                          public ::testing::WithParamInterface<const char*> {};

TEST_P(FsCrashRenameTest, RecoveryYieldsExactlyOneName) {
  ASSERT_TRUE(p().mkdir("/rdir").is_ok());
  auto fd = p().open("/rdir/old", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().write(*fd, "payload", 7).is_ok());
  const auto ino = p().stat("/rdir/old")->inode;
  crash_during(GetParam(), [&] { (void)p().rename("/rdir/old", "/rdir/new"); });
  remount_after_crash();
  const bool has_old = p().stat("/rdir/old").is_ok();
  const bool has_new = p().stat("/rdir/new").is_ok();
  EXPECT_NE(has_old, has_new)
      << "rename must be atomic: exactly one name visible (old=" << has_old
      << " new=" << has_new << ")";
  const auto st = p().stat(has_old ? "/rdir/old" : "/rdir/new");
  ASSERT_TRUE(st.is_ok());
  EXPECT_EQ(st->inode, ino) << "the inode must survive the rename crash";
  EXPECT_EQ(st->size, 7u);
}

INSTANTIATE_TEST_SUITE_P(RenameSteps, FsCrashRenameTest,
                         ::testing::Values("dir.rename.shadow_created",
                                           "dir.rename.marked",
                                           "dir.rename.line_inconsistent",
                                           "dir.rename.old_entry_freed",
                                           "dir.rename.published"));

// ---- cross-directory rename (§4.3 log entry) ----

class FsCrashXRenameTest : public FsCrashTest,
                           public ::testing::WithParamInterface<const char*> {
};

TEST_P(FsCrashXRenameTest, LogReplayYieldsExactlyOneName) {
  ASSERT_TRUE(p().mkdir("/from").is_ok());
  ASSERT_TRUE(p().mkdir("/to").is_ok());
  auto fd = p().open("/from/item", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().write(*fd, "cargo", 5).is_ok());
  const auto ino = p().stat("/from/item")->inode;
  crash_during(GetParam(),
               [&] { (void)p().rename("/from/item", "/to/item"); });
  remount_after_crash();
  const bool at_src = p().stat("/from/item").is_ok();
  const bool at_dst = p().stat("/to/item").is_ok();
  EXPECT_NE(at_src, at_dst) << "src=" << at_src << " dst=" << at_dst;
  const auto st = p().stat(at_src ? "/from/item" : "/to/item");
  ASSERT_TRUE(st.is_ok());
  EXPECT_EQ(st->inode, ino);
  EXPECT_EQ(st->size, 5u);
}

INSTANTIATE_TEST_SUITE_P(XRenameSteps, FsCrashXRenameTest,
                         ::testing::Values("dir.xrename.log_written",
                                           "dir.xrename.log_armed",
                                           "dir.xrename.dst_published",
                                           "dir.xrename.src_cleared"));

// ---- allocator crash points through the FS ----

TEST_F(FsCrashTest, CrashDuringObjectClaimIsReclaimed) {
  crash_during("objalloc.claimed",
               [&] { (void)p().open("/oc", kOpenCreate | kOpenWrite); });
  remount_after_crash();
  EXPECT_EQ(p().stat("/oc").code(), Errc::not_found);
  EXPECT_TRUE(p().open("/oc", kOpenCreate | kOpenWrite).is_ok());
}

TEST_F(FsCrashTest, CrashDuringInodeDropRecovered) {
  auto fd = p().open("/dropme", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  std::vector<char> data(64 * 1024, 'x');
  ASSERT_TRUE(p().pwrite(*fd, data.data(), data.size(), 0).is_ok());
  ASSERT_TRUE(p().close(*fd).is_ok());
  crash_during("fs.drop_inode.storage_freed",
               [&] { (void)p().unlink("/dropme"); });
  remount_after_crash();
  EXPECT_EQ(p().stat("/dropme").code(), Errc::not_found);
  // All blocks accounted for: everything the file held is free again.
  const auto report = fs_->recover();
  EXPECT_EQ(report.files, 0u);
}

TEST_F(FsCrashTest, CrashDuringWriteKeepsSizeConsistent) {
  // Data is persisted before metadata: a crash after the data fence but
  // before the size update leaves the *old* size — never a size covering
  // unwritten bytes.
  auto fd = p().open("/wcrash", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  ASSERT_TRUE(p().pwrite(*fd, "first", 5, 0).is_ok());
  crash_during("fs.write.data_persisted",
               [&] { (void)p().pwrite(*fd, "0123456789", 10, 0); });
  remount_after_crash();
  EXPECT_EQ(p().stat("/wcrash")->size, 5u);
}

TEST_F(FsCrashTest, SurvivorStealsAbandonedLineLock) {
  // The crash leaves the directory line busy; a survivor's create on the
  // same line must steal the lease and proceed (no hang).
  ASSERT_TRUE(p().open("/same", kOpenCreate | kOpenWrite).is_ok());
  crash_during("dir.remove.entry_invalidated",
               [&] { (void)p().unlink("/same"); });
  auto survivor = fs_->open_process(1000, 1000);
  // Same name => same hash line => must wait out the 2 ms lease, repair,
  // then succeed.
  EXPECT_TRUE(survivor->open("/same", kOpenCreate | kOpenWrite).is_ok());
}

}  // namespace
}  // namespace simurgh::testing

namespace simurgh::testing {
namespace {

// ---- block-allocator crash points reached through the FS ----

TEST_F(FsCrashTest, CrashDuringBlockSplitLosesNoSpace) {
  // Die between carving a free range and returning it: the blocks are
  // neither in the free list (range already shrunk) nor reachable from any
  // inode — full recovery's sweep must return them.
  auto fd = p().open("/bs", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.is_ok());
  crash_during("blockalloc.split",
               [&] { (void)p().pwrite(*fd, "x", 1, 0); });
  remount_after_crash();
  const std::uint64_t free_after = fs_->blocks().free_blocks();
  // Write the same file again; allocation must succeed and accounting must
  // stay exact across a second recovery.
  auto fd2 = p().open("/bs", kOpenWrite);
  ASSERT_TRUE(fd2.is_ok());
  ASSERT_TRUE(p().pwrite(*fd2, "x", 1, 0).is_ok());
  (void)fs_->recover();
  EXPECT_EQ(fs_->blocks().free_blocks() + 1, free_after);
}

TEST_F(FsCrashTest, CrashDuringChainExtensionIsRecovered) {
  // Force a hash line to overflow into a new chain block and die right
  // after linking it: the half-used chain must be usable (or reclaimed)
  // after recovery.
  ASSERT_TRUE(p().mkdir("/chain").is_ok());
  // Fill one line: find 9 names hashing to the same line (8 slots/line).
  const unsigned want = core::line_of("anchor");
  std::vector<std::string> names{"anchor"};
  for (int i = 0; names.size() < 9; ++i) {
    std::string cand = "x" + std::to_string(i);
    if (core::line_of(cand) == want) names.push_back(cand);
  }
  for (std::size_t i = 0; i + 1 < names.size(); ++i)
    ASSERT_TRUE(
        p().open("/chain/" + names[i], kOpenCreate | kOpenWrite).is_ok());
  crash_during("dir.chain_extended", [&] {
    (void)p().open("/chain/" + names.back(), kOpenCreate | kOpenWrite);
  });
  remount_after_crash();
  // All previously created files survive; the crashed name is absent or
  // present (either is a legal outcome) but creatable.
  for (std::size_t i = 0; i + 1 < names.size(); ++i)
    EXPECT_TRUE(p().stat("/chain/" + names[i]).is_ok()) << names[i];
  (void)p().unlink("/chain/" + names.back());
  EXPECT_TRUE(
      p().open("/chain/" + names.back(), kOpenCreate | kOpenWrite).is_ok());
  EXPECT_EQ(fs_->recover().reclaimed_objects, 0u);
}

TEST_F(FsCrashTest, RepeatedCrashesAtTheSamePointConverge) {
  // Crash the same create step ten times in a row; the namespace and the
  // allocators must stay consistent through every retry.
  fs_->set_lease_ns(1'000'000);
  for (int round = 0; round < 10; ++round) {
    FailPoint::arm("fs.create.entry_persisted");
    EXPECT_THROW((void)p().open("/flappy", kOpenCreate | kOpenWrite),
                 CrashedException);
    FailPoint::disarm();
  }
  remount_after_crash();
  EXPECT_EQ(p().stat("/flappy").code(), Errc::not_found);
  EXPECT_TRUE(p().open("/flappy", kOpenCreate | kOpenWrite).is_ok());
  EXPECT_EQ(fs_->recover().reclaimed_objects, 0u);
}

}  // namespace
}  // namespace simurgh::testing
