// Tests for the DAX-style MappedFile view.
#include <cstring>

#include "common/rng.h"

#include "core/mmap_view.h"
#include "fs_fixture.h"

namespace simurgh::testing {
namespace {

using core::kOpenCreate;
using core::kOpenRead;
using core::kOpenWrite;
using core::MappedFile;

class MmapViewTest : public FsTest {
 protected:
  int make_file(const std::string& path, const std::string& content) {
    auto fd = p().open(path, kOpenCreate | kOpenWrite | kOpenRead);
    EXPECT_TRUE(fd.is_ok());
    EXPECT_TRUE(p().pwrite(*fd, content.data(), content.size(), 0).is_ok());
    return *fd;
  }
};

TEST_F(MmapViewTest, ZeroCopySpanPointsIntoTheDevice) {
  make_file("/m", "mapped-bytes");
  auto view = MappedFile::map(p(), "/m");
  ASSERT_TRUE(view.is_ok());
  EXPECT_EQ(view->size(), 12u);
  const auto span = view->span_at(0);
  ASSERT_EQ(span.size(), 12u);
  EXPECT_EQ(std::memcmp(span.data(), "mapped-bytes", 12), 0);
  // Genuinely zero-copy: the span lies inside the NVMM device mapping.
  EXPECT_TRUE(nvmm_->contains(span.data()));
}

TEST_F(MmapViewTest, SpanStopsAtExtentRunAndOffsetsWork) {
  // Two discontiguous extents: write block 0 and block 2 (hole at 1).
  const int fd = make_file("/gap", "");
  std::vector<char> blk(4096, 'A');
  ASSERT_TRUE(p().pwrite(fd, blk.data(), blk.size(), 0).is_ok());
  std::fill(blk.begin(), blk.end(), 'C');
  ASSERT_TRUE(p().pwrite(fd, blk.data(), blk.size(), 2 * 4096).is_ok());
  auto view = MappedFile::map(p(), "/gap");
  ASSERT_TRUE(view.is_ok());
  EXPECT_EQ(view->span_at(100).size(), 4096u - 100);  // stops at the hole
  EXPECT_TRUE(view->span_at(4096).empty());           // the hole itself
  const auto tail = view->span_at(2 * 4096 + 5);
  ASSERT_FALSE(tail.empty());
  EXPECT_EQ(std::to_integer<char>(tail[0]), 'C');
}

TEST_F(MmapViewTest, CopyStreamsAcrossHolesWithZeroFill) {
  const int fd = make_file("/holes", "");
  ASSERT_TRUE(p().pwrite(fd, "head", 4, 0).is_ok());
  ASSERT_TRUE(p().pwrite(fd, "tail", 4, 2 * 4096).is_ok());
  auto view = MappedFile::map(p(), "/holes");
  ASSERT_TRUE(view.is_ok());
  std::vector<char> buf(2 * 4096 + 4);
  EXPECT_EQ(view->copy(buf.data(), buf.size(), 0), buf.size());
  EXPECT_EQ(std::memcmp(buf.data(), "head", 4), 0);
  EXPECT_EQ(buf[4096], '\0');
  EXPECT_EQ(std::memcmp(buf.data() + 2 * 4096, "tail", 4), 0);
  // Tail clamp at EOF.
  EXPECT_EQ(view->copy(buf.data(), 100, 2 * 4096 + 2), 2u);
}

TEST_F(MmapViewTest, SeesWritesCoherently) {
  const int fd = make_file("/coherent", "before--");
  auto view = MappedFile::map(p(), "/coherent");
  ASSERT_TRUE(view.is_ok());
  ASSERT_TRUE(p().pwrite(fd, "after!!!", 8, 0).is_ok());
  const auto span = view->span_at(0);
  EXPECT_EQ(std::memcmp(span.data(), "after!!!", 8), 0);
}

TEST_F(MmapViewTest, PermissionAndTypeChecks) {
  make_file("/secret", "x");
  ASSERT_TRUE(p().chmod("/secret", 0200).is_ok());  // owner write-only
  EXPECT_EQ(MappedFile::map(p(), "/secret").code(), Errc::permission);
  ASSERT_TRUE(p().mkdir("/d").is_ok());
  EXPECT_EQ(MappedFile::map(p(), "/d").code(), Errc::invalid);
  EXPECT_EQ(MappedFile::map(p(), "/nope").code(), Errc::not_found);
}

TEST_F(MmapViewTest, TarStylePackViaMmapMatchesReads) {
  // The tar use case: stream a large file through the view and compare
  // with the read() path byte for byte.
  const int fd = make_file("/big", "");
  std::vector<char> data(300 * 1024);
  simurgh::Rng rng(5);
  for (auto& c : data) c = static_cast<char>(rng.next());
  ASSERT_TRUE(p().pwrite(fd, data.data(), data.size(), 0).is_ok());
  auto view = MappedFile::map(p(), "/big");
  ASSERT_TRUE(view.is_ok());
  std::vector<char> via_mmap(data.size());
  EXPECT_EQ(view->copy(via_mmap.data(), via_mmap.size(), 0), data.size());
  std::vector<char> via_read(data.size());
  ASSERT_TRUE(p().pread(fd, via_read.data(), via_read.size(), 0).is_ok());
  EXPECT_EQ(via_mmap, via_read);
  EXPECT_EQ(via_mmap, data);
}

}  // namespace
}  // namespace simurgh::testing
