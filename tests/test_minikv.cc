// Tests for the minikv LSM store (the LevelDB stand-in under YCSB).
#include <gtest/gtest.h>

#include "baselines/kernelfs.h"
#include "workloads/minikv.h"

namespace simurgh::bench {
namespace {

class MiniKvTest : public ::testing::Test {
 protected:
  MiniKvTest() : fs_(world_, nova_profile()), kv_(make_kv()) {}

  MiniKv make_kv() {
    MiniKvOptions o;
    o.memtable_budget = 8 << 10;  // tiny: force flushes in tests
    o.compaction_trigger = 3;
    return MiniKv(fs_, setup_, o);
  }

  sim::SimWorld world_;
  KernelFs fs_;
  sim::SimThread setup_{-1};
  sim::SimThread t_{0};
  MiniKv kv_;
};

TEST_F(MiniKvTest, PutGetRoundTrip) {
  ASSERT_TRUE(kv_.put(t_, "alpha", 100).is_ok());
  auto v = kv_.get(t_, "alpha");
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(*v, 100u);
}

TEST_F(MiniKvTest, MissingKeyNotFound) {
  EXPECT_EQ(kv_.get(t_, "ghost").code(), Errc::not_found);
}

TEST_F(MiniKvTest, OverwriteReturnsLatestValue) {
  ASSERT_TRUE(kv_.put(t_, "k", 10).is_ok());
  ASSERT_TRUE(kv_.put(t_, "k", 20).is_ok());
  EXPECT_EQ(*kv_.get(t_, "k"), 20u);
}

TEST_F(MiniKvTest, DeleteTombstones) {
  ASSERT_TRUE(kv_.put(t_, "k", 10).is_ok());
  ASSERT_TRUE(kv_.remove(t_, "k").is_ok());
  EXPECT_EQ(kv_.get(t_, "k").code(), Errc::not_found);
}

TEST_F(MiniKvTest, FlushMovesDataToTablesAndStillReads) {
  for (int i = 0; i < 50; ++i)
    ASSERT_TRUE(kv_.put(t_, "key" + std::to_string(i), 500).is_ok());
  ASSERT_TRUE(kv_.flush(t_).is_ok());
  EXPECT_GE(kv_.table_count(), 1u);
  for (int i = 0; i < 50; ++i)
    EXPECT_TRUE(kv_.get(t_, "key" + std::to_string(i)).is_ok()) << i;
}

TEST_F(MiniKvTest, ValueSurvivesFlushAndOverwriteWins) {
  ASSERT_TRUE(kv_.put(t_, "x", 111).is_ok());
  ASSERT_TRUE(kv_.flush(t_).is_ok());
  ASSERT_TRUE(kv_.put(t_, "x", 222).is_ok());  // newer, in memtable
  EXPECT_EQ(*kv_.get(t_, "x"), 222u);
  ASSERT_TRUE(kv_.flush(t_).is_ok());  // now both in tables
  EXPECT_EQ(*kv_.get(t_, "x"), 222u);  // newest table wins
}

TEST_F(MiniKvTest, DeleteSurvivesFlush) {
  ASSERT_TRUE(kv_.put(t_, "gone", 5).is_ok());
  ASSERT_TRUE(kv_.flush(t_).is_ok());
  ASSERT_TRUE(kv_.remove(t_, "gone").is_ok());
  ASSERT_TRUE(kv_.flush(t_).is_ok());
  EXPECT_EQ(kv_.get(t_, "gone").code(), Errc::not_found);
}

TEST_F(MiniKvTest, CompactionMergesTablesAndDropsTombstones) {
  for (int round = 0; round < 6; ++round)
    for (int i = 0; i < 30; ++i)
      ASSERT_TRUE(
          kv_.put(t_, "k" + std::to_string(i), 300 + round).is_ok());
  ASSERT_TRUE(kv_.remove(t_, "k0").is_ok());
  ASSERT_TRUE(kv_.flush(t_).is_ok());
  EXPECT_GE(kv_.compactions(), 1u);
  EXPECT_LE(kv_.table_count(), 3u);  // merged down
  EXPECT_EQ(kv_.get(t_, "k0").code(), Errc::not_found);
  EXPECT_EQ(*kv_.get(t_, "k1"), 305u);  // last round's value
}

TEST_F(MiniKvTest, ScanReturnsRequestedRange) {
  for (int i = 10; i < 60; ++i)
    ASSERT_TRUE(kv_.put(t_, "s" + std::to_string(i), 64).is_ok());
  auto n = kv_.scan(t_, "s20", 15);
  ASSERT_TRUE(n.is_ok());
  EXPECT_EQ(*n, 15u);
}

TEST_F(MiniKvTest, WalRotationDeletesOldLogs) {
  // Each flush rotates the WAL; the filesystem must not accumulate logs.
  for (int i = 0; i < 200; ++i)
    ASSERT_TRUE(kv_.put(t_, "w" + std::to_string(i), 400).is_ok());
  auto names = fs_.readdir(t_, "/db");
  ASSERT_TRUE(names.is_ok());
  int wals = 0;
  for (const auto& n : *names)
    if (n.rfind("wal-", 0) == 0) ++wals;
  EXPECT_EQ(wals, 1) << "exactly one live WAL after rotations";
}

TEST_F(MiniKvTest, ChargesApplicationTimeSeparately) {
  const auto app_before = t_.bucket(sim::SimThread::Attr::app);
  ASSERT_TRUE(kv_.put(t_, "attr", 128).is_ok());
  EXPECT_GT(t_.bucket(sim::SimThread::Attr::app), app_before);
}

}  // namespace
}  // namespace simurgh::bench
