// Tests for the protected-function security model (§3).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "protsec/bootstrap.h"
#include "protsec/cyclemodel.h"
#include "protsec/gateway.h"
#include "protsec/pagetable.h"

namespace simurgh::protsec {
namespace {

TEST(CycleModel, MatchesPaperNumbers) {
  // §3.3: jmpp+pret ≈ 70 cycles; delta over a call ≈ 46 cycles (the value
  // the evaluation charges to every Simurgh call).
  EXPECT_EQ(kCycleModel.jmpp_pret(), 70u);
  EXPECT_EQ(kCycleModel.jmpp_delta(), 46u);
  EXPECT_EQ(kCycleModel.call, 24u);
  EXPECT_EQ(kCycleModel.gem5_syscall, 1200u);
  EXPECT_EQ(kCycleModel.host_syscall, 400u);
}

TEST(PageTable, UserCannotSetEpBit) {
  PageTable pt;
  Pte pte;
  pte.ep = true;
  EXPECT_EQ(pt.map(Cpl::user, 0x1000, pte), Fault::privileged_bit);
  EXPECT_EQ(pt.map(Cpl::kernel, 0x1000, pte), Fault::none);
  EXPECT_EQ(pt.set_ep(Cpl::user, 0x1000, false), Fault::privileged_bit);
  EXPECT_EQ(pt.set_ep(Cpl::kernel, 0x1000, false), Fault::none);
}

TEST(PageTable, UserCannotWriteEpPage) {
  // §3.1 Requirement 2: normal functions cannot change protected code.
  PageTable pt;
  Pte pte;
  pte.ep = true;
  pte.writable = true;
  pte.user = true;
  ASSERT_EQ(pt.map(Cpl::kernel, 0x2000, pte), Fault::none);
  EXPECT_EQ(pt.check_write(Cpl::user, 0x2100), Fault::write_protected);
  EXPECT_EQ(pt.check_write(Cpl::kernel, 0x2100), Fault::none);
}

TEST(PageTable, UserCannotWriteKernelPage) {
  // §3.1 Requirement 1: FS data/metadata pages are kernel pages.
  PageTable pt;
  Pte pte;
  pte.writable = true;
  pte.user = false;
  ASSERT_EQ(pt.map(Cpl::kernel, 0x3000, pte), Fault::none);
  EXPECT_EQ(pt.check_write(Cpl::user, 0x3000), Fault::write_protected);
  EXPECT_EQ(pt.check_write(Cpl::kernel, 0x3000), Fault::none);
}

TEST(PageTable, UserCannotRemapProtectedPage) {
  // §3.2: mmap() is modified to refuse replacing protected mappings.
  PageTable pt;
  Pte prot;
  prot.ep = true;
  ASSERT_EQ(pt.map(Cpl::kernel, 0x4000, prot), Fault::none);
  Pte attack;
  attack.writable = true;
  attack.user = true;
  EXPECT_EQ(pt.remap(Cpl::user, 0x4000, attack), Fault::privileged_bit);
  EXPECT_EQ(pt.remap(Cpl::kernel, 0x4000, attack), Fault::none);
}

TEST(PageTable, JmppChecks) {
  PageTable pt;
  EXPECT_EQ(pt.check_jmpp(0x5000), Fault::not_present);
  Pte plain;
  plain.user = true;
  ASSERT_EQ(pt.map(Cpl::kernel, 0x5000, plain), Fault::none);
  EXPECT_EQ(pt.check_jmpp(0x5000), Fault::not_executable_protected);
  ASSERT_EQ(pt.set_ep(Cpl::kernel, 0x5000, true), Fault::none);
  EXPECT_EQ(pt.check_jmpp(0x5000), Fault::none);
  EXPECT_EQ(pt.check_jmpp(0x5400), Fault::none);   // entry offset 0x400
  EXPECT_EQ(pt.check_jmpp(0x5404), Fault::bad_entry_offset);
  EXPECT_EQ(pt.check_jmpp(0x5123), Fault::bad_entry_offset);
}

class GatewayTest : public ::testing::Test {
 protected:
  void install(std::array<ProtFn, kEntriesPerPage> entries,
               std::uint64_t vaddr = 0x10000) {
    ASSERT_EQ(gw_.install_page(Cpl::kernel, vaddr, std::move(entries)),
              Fault::none);
  }
  PageTable pt_;
  Gateway gw_{pt_};
};

TEST_F(GatewayTest, UserCannotInstall) {
  EXPECT_EQ(gw_.install_page(Cpl::user, 0x10000, {}),
            Fault::privileged_bit);
}

TEST_F(GatewayTest, JmppRunsWithKernelPrivilege) {
  Cpl seen = Cpl::user;
  install({[&](void*) -> std::uint64_t {
             seen = gw_.current_cpl();
             return 42;
           },
           nullptr, nullptr, nullptr});
  std::uint64_t result = 0;
  EXPECT_EQ(gw_.jmpp(0x10000, nullptr, &result), Fault::none);
  EXPECT_EQ(result, 42u);
  EXPECT_EQ(seen, Cpl::kernel);             // escalated inside
  EXPECT_EQ(gw_.current_cpl(), Cpl::user);  // dropped after pret
  EXPECT_EQ(gw_.nesting(), 0);
}

TEST_F(GatewayTest, JmppToNopSlotFaults) {
  install({[](void*) -> std::uint64_t { return 1; }, nullptr, nullptr,
           nullptr});
  EXPECT_EQ(gw_.jmpp(0x10400, nullptr), Fault::bad_entry_offset);
}

TEST_F(GatewayTest, JmppToMisalignedOffsetFaults) {
  install({[](void*) -> std::uint64_t { return 1; }, nullptr, nullptr,
           nullptr});
  EXPECT_EQ(gw_.jmpp(0x10008, nullptr), Fault::bad_entry_offset);
}

TEST_F(GatewayTest, JmppToUnprotectedPageFaults) {
  Pte plain;
  plain.user = true;
  ASSERT_EQ(pt_.map(Cpl::kernel, 0x20000, plain), Fault::none);
  EXPECT_EQ(gw_.jmpp(0x20000, nullptr), Fault::not_executable_protected);
}

TEST_F(GatewayTest, NestedJmppKeepsPrivilegeUntilOutermostPret) {
  int inner_nest = 0;
  Cpl cpl_after_inner = Cpl::user;
  install({[&](void*) -> std::uint64_t {  // entry 0: outer
             std::uint64_t r = 0;
             gw_.jmpp(0x10400, nullptr, &r);
             cpl_after_inner = gw_.current_cpl();
             return r;
           },
           [&](void*) -> std::uint64_t {  // entry 1: inner
             inner_nest = gw_.nesting();
             return 7;
           },
           nullptr, nullptr});
  std::uint64_t result = 0;
  EXPECT_EQ(gw_.jmpp(0x10000, nullptr, &result), Fault::none);
  EXPECT_EQ(result, 7u);
  EXPECT_EQ(inner_nest, 2);
  EXPECT_EQ(cpl_after_inner, Cpl::kernel);  // still kernel after inner pret
  EXPECT_EQ(gw_.current_cpl(), Cpl::user);
}

TEST_F(GatewayTest, PretWithoutJmppFaults) {
  EXPECT_EQ(gw_.pret(), Fault::pret_without_jmpp);
}

TEST_F(GatewayTest, ProtectedStackShieldsReturnAddresses) {
  std::size_t depth_inside = 0;
  install({[&](void*) -> std::uint64_t {
             depth_inside = gw_.protected_stack_depth();
             return 0;
           },
           nullptr, nullptr, nullptr});
  EXPECT_EQ(gw_.protected_stack_depth(), 0u);
  ASSERT_EQ(gw_.jmpp(0x10000, nullptr), Fault::none);
  EXPECT_EQ(depth_inside, 1u);              // return address parked inside
  EXPECT_EQ(gw_.protected_stack_depth(), 0u);
}

TEST_F(GatewayTest, ChargesCycleModelCosts) {
  install({[](void*) -> std::uint64_t { return 0; }, nullptr, nullptr,
           nullptr});
  gw_.reset_cycles();
  ASSERT_EQ(gw_.jmpp(0x10000, nullptr), Fault::none);
  EXPECT_EQ(gw_.cycles(), kCycleModel.jmpp_pret());
  ASSERT_EQ(gw_.jmpp(0x10000, nullptr), Fault::none);
  EXPECT_EQ(gw_.cycles(), 2 * kCycleModel.jmpp_pret());
}

TEST(Bootstrap, RejectsNonWhitelistedLibrary) {
  PageTable pt;
  Gateway gw(pt);
  Bootstrap boot(pt, gw);
  auto h = boot.load_protected("evil", {[](void*) -> std::uint64_t { return 0; }},
                               Credentials{1000, 1000});
  EXPECT_EQ(h.code(), Errc::permission);
}

TEST(Bootstrap, LoadsWhitelistedLibraryAcrossPages) {
  PageTable pt;
  Gateway gw(pt);
  Bootstrap boot(pt, gw);
  boot.whitelist("simurgh");
  std::vector<ProtFn> fns;
  for (int i = 0; i < 6; ++i)  // spans two pages (4 entries per page)
    fns.push_back([i](void*) -> std::uint64_t { return 100 + i; });
  auto h = boot.load_protected("simurgh", std::move(fns),
                               Credentials{1000, 1000});
  ASSERT_TRUE(h.is_ok());
  EXPECT_EQ(h->creds.euid, 1000u);
  for (int i = 0; i < 6; ++i) {
    std::uint64_t r = 0;
    EXPECT_EQ(gw.jmpp(h->entry(i), nullptr, &r), Fault::none) << i;
    EXPECT_EQ(r, 100u + i);
  }
  // Entry 6 would be slot 2 of page 2 — installed as nop, must fault.
  EXPECT_EQ(gw.jmpp(h->entry(6), nullptr), Fault::bad_entry_offset);
}

}  // namespace
}  // namespace simurgh::protsec

namespace simurgh::protsec {
namespace {

TEST(GatewayThreads, PerThreadPrivilegeIsolation) {
  // The CPL, nesting counter and protected stack are per-hardware-thread
  // state: one thread sitting inside a protected function must not leak
  // privilege to another (§3.2's multi-threading discussion).
  PageTable pt;
  Gateway gw(pt);
  std::atomic<bool> inside{false}, checked{false};
  std::array<ProtFn, kEntriesPerPage> entries{};
  entries[0] = [&](void*) -> std::uint64_t {
    inside.store(true, std::memory_order_release);
    while (!checked.load(std::memory_order_acquire)) {
    }
    return 0;
  };
  ASSERT_EQ(gw.install_page(Cpl::kernel, 0x30000, std::move(entries)),
            Fault::none);

  std::thread worker([&] { ASSERT_EQ(gw.jmpp(0x30000, nullptr), Fault::none); });
  while (!inside.load(std::memory_order_acquire)) {
  }
  // This thread observes *its own* CPU state, not the worker's.
  EXPECT_EQ(gw.current_cpl(), Cpl::user);
  EXPECT_EQ(gw.nesting(), 0);
  EXPECT_EQ(gw.protected_stack_depth(), 0u);
  EXPECT_EQ(gw.pret(), Fault::pret_without_jmpp);
  checked.store(true, std::memory_order_release);
  worker.join();
}

TEST(GatewayThreads, ConcurrentJmppsAllSucceed) {
  PageTable pt;
  Gateway gw(pt);
  std::array<ProtFn, kEntriesPerPage> entries{};
  entries[0] = [](void* a) -> std::uint64_t {
    return *static_cast<std::uint64_t*>(a) * 2;
  };
  ASSERT_EQ(gw.install_page(Cpl::kernel, 0x40000, std::move(entries)),
            Fault::none);
  std::vector<std::thread> ts;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    ts.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 500; ++i) {
        std::uint64_t arg = t * 1000 + i, out = 0;
        if (gw.jmpp(0x40000, &arg, &out) != Fault::none || out != arg * 2)
          ++failures;
        if (gw.current_cpl() != Cpl::user) ++failures;
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace simurgh::protsec
