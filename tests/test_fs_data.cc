// Data-path tests: extents, large files, truncate, fallocate, persistence
// ordering (§4.3 "Data operations").
#include <cstring>

#include "common/rng.h"
#include "fs_fixture.h"
#include "nvmm/persist.h"
#include "nvmm/shadow.h"

namespace simurgh::testing {
namespace {

using core::kOpenCreate;
using core::kOpenRead;
using core::kOpenWrite;

class FsDataTest : public FsTest {
 protected:
  int make_file(const std::string& path) {
    auto fd = p().open(path, kOpenCreate | kOpenWrite | kOpenRead);
    EXPECT_TRUE(fd.is_ok());
    return *fd;
  }
};

TEST_F(FsDataTest, MultiBlockWriteReadBack) {
  const int fd = make_file("/big");
  std::vector<char> data(100 * 1024);
  Rng rng(42);
  for (auto& c : data) c = static_cast<char>(rng.next());
  ASSERT_EQ(*p().pwrite(fd, data.data(), data.size(), 0), data.size());
  std::vector<char> back(data.size());
  ASSERT_EQ(*p().pread(fd, back.data(), back.size(), 0), back.size());
  EXPECT_EQ(std::memcmp(data.data(), back.data(), data.size()), 0);
}

TEST_F(FsDataTest, UnalignedWritesAcrossBlockBoundaries) {
  const int fd = make_file("/unaligned");
  // Write 100 bytes straddling the 4 KB boundary.
  std::string chunk(100, 'Z');
  ASSERT_TRUE(p().pwrite(fd, chunk.data(), chunk.size(), 4096 - 50).is_ok());
  char buf[100];
  ASSERT_TRUE(p().pread(fd, buf, 100, 4096 - 50).is_ok());
  EXPECT_EQ(std::string(buf, 100), chunk);
  // Bytes before the write within the same block read as zero.
  char pre[10];
  ASSERT_TRUE(p().pread(fd, pre, 10, 4096 - 60).is_ok());
  EXPECT_EQ(std::string(pre, 10), std::string(10, '\0'));
}

TEST_F(FsDataTest, SpillsBeyondInlineExtents) {
  // Writing every *other* block leaves holes between extents, so no two
  // extents can merge: 200 extents forces the spill chain (> 6 inline).
  const int fd = make_file("/spill");
  char blk[4096];
  for (int i = 0; i < 200; ++i) {
    std::memset(blk, 'a' + (i % 26), sizeof blk);
    ASSERT_TRUE(
        p().pwrite(fd, blk, sizeof blk, 2ull * i * sizeof blk).is_ok());
  }
  const core::Inode* ino = fs_->inode_at(p().stat("/spill")->inode);
  EXPECT_FALSE(ino->ext_spill.load().is_null());
  char buf[4096];
  for (int i = 0; i < 200; i += 37) {
    ASSERT_TRUE(
        p().pread(fd, buf, sizeof buf, 2ull * i * sizeof buf).is_ok());
    EXPECT_EQ(buf[0], static_cast<char>('a' + (i % 26))) << i;
    // The hole after each written block reads zero.
    ASSERT_TRUE(
        p().pread(fd, buf, sizeof buf, (2ull * i + 1) * sizeof buf).is_ok());
    EXPECT_EQ(buf[0], '\0');
  }
}

TEST_F(FsDataTest, ReadPastEofTruncatesAndAtEofReturnsZero) {
  const int fd = make_file("/eof");
  ASSERT_TRUE(p().pwrite(fd, "12345", 5, 0).is_ok());
  char buf[10];
  EXPECT_EQ(*p().pread(fd, buf, 10, 0), 5u);
  EXPECT_EQ(*p().pread(fd, buf, 10, 5), 0u);
  EXPECT_EQ(*p().pread(fd, buf, 10, 100), 0u);
}

TEST_F(FsDataTest, TruncateShrinkFreesBlocksAndZeroesTail) {
  const int fd = make_file("/shrink");
  std::vector<char> data(64 * 1024, 'q');
  ASSERT_TRUE(p().pwrite(fd, data.data(), data.size(), 0).is_ok());
  const std::uint64_t free_before = fs_->blocks().free_blocks();
  ASSERT_TRUE(p().ftruncate(fd, 100).is_ok());
  EXPECT_GT(fs_->blocks().free_blocks(), free_before);
  EXPECT_EQ(p().stat("/shrink")->size, 100u);
  // Regrow: bytes beyond 100 must read zero, not stale 'q'.
  ASSERT_TRUE(p().ftruncate(fd, 200).is_ok());
  char buf[100];
  ASSERT_TRUE(p().pread(fd, buf, 100, 100).is_ok());
  EXPECT_EQ(std::string(buf, 100), std::string(100, '\0'));
}

TEST_F(FsDataTest, TruncateGrowReadsZeros) {
  const int fd = make_file("/grow");
  ASSERT_TRUE(p().ftruncate(fd, 10000).is_ok());
  EXPECT_EQ(p().stat("/grow")->size, 10000u);
  char buf[100];
  ASSERT_TRUE(p().pread(fd, buf, 100, 5000).is_ok());
  EXPECT_EQ(std::string(buf, 100), std::string(100, '\0'));
}

TEST_F(FsDataTest, FallocateReservesBlocks) {
  const int fd = make_file("/prealloc");
  const std::uint64_t before = fs_->blocks().free_blocks();
  ASSERT_TRUE(p().fallocate(fd, 0, 4 << 20).is_ok());
  EXPECT_EQ(before - fs_->blocks().free_blocks(), (4u << 20) / 4096);
  EXPECT_EQ(p().stat("/prealloc")->size, 4u << 20);
  // Subsequent writes must not allocate further blocks.
  const std::uint64_t after_falloc = fs_->blocks().free_blocks();
  char blk[4096] = {1};
  ASSERT_TRUE(p().pwrite(fd, blk, sizeof blk, 1 << 20).is_ok());
  EXPECT_EQ(fs_->blocks().free_blocks(), after_falloc);
}

TEST_F(FsDataTest, WritePersistsDataBeforeMetadata) {
  // The paper's ordering rule: data is persisted (nt stores) and fenced
  // before the size update.  Observable via the persist-stats epochs: the
  // write path must issue at least two fences with nt bytes in between.
  auto& ps = nvmm::persist_stats();
  const int fd = make_file("/order");
  ps.reset();
  ASSERT_TRUE(p().pwrite(fd, "payload", 7, 0).is_ok());
  EXPECT_GE(ps.nt_bytes.load(), 7u);
  EXPECT_GE(ps.fences.load(), 2u);  // data fence + metadata fence
}

TEST_F(FsDataTest, UnlinkReturnsBlocksToAllocator) {
  const int fd = make_file("/deleteme");
  std::vector<char> data(256 * 1024, 'd');
  ASSERT_TRUE(p().pwrite(fd, data.data(), data.size(), 0).is_ok());
  ASSERT_TRUE(p().close(fd).is_ok());
  const std::uint64_t used = fs_->blocks().free_blocks();
  ASSERT_TRUE(p().unlink("/deleteme").is_ok());
  EXPECT_EQ(fs_->blocks().free_blocks(), used + 256 * 1024 / 4096);
}

TEST_F(FsDataTest, RelaxedModeStillReadsBack) {
  fs_->set_relaxed_writes(true);
  const int fd = make_file("/relaxed");
  ASSERT_TRUE(p().pwrite(fd, "no-lock", 7, 0).is_ok());
  char buf[8] = {};
  ASSERT_TRUE(p().pread(fd, buf, 7, 0).is_ok());
  EXPECT_EQ(std::string(buf, 7), "no-lock");
  fs_->set_relaxed_writes(false);
}

TEST_F(FsDataTest, OverwriteCommitsExactlyOneMetadataLine) {
  const int fd = make_file("/persistshape");
  std::vector<char> blk(4096, 'x');
  // First write allocates; the measured overwrite is pure data + commit.
  ASSERT_TRUE(p().pwrite(fd, blk.data(), blk.size(), 0).is_ok());
  nvmm::FlushCounter fc;
  ASSERT_TRUE(p().pwrite(fd, blk.data(), blk.size(), 0).is_ok());
  // The commit flushes only the inode's size/mtime stamp — one cache line,
  // one persist call — not the whole Inode (which spans four lines).  Two
  // fences: data-before-metadata, then the commit itself.
  EXPECT_EQ(fc.persist_calls(), 1u);
  EXPECT_EQ(fc.persist_lines(), 1u);
  EXPECT_EQ(fc.nt_lines(), 4096u / nvmm::kCacheLine);
  EXPECT_EQ(fc.fences(), 2u);
}

TEST_F(FsDataTest, MultiBlockWriteStreamsOnce) {
  const int fd = make_file("/coalesce");
  std::vector<char> buf(8 * 4096, 'm');
  {
    nvmm::FlushCounter fc;
    ASSERT_TRUE(p().pwrite(fd, buf.data(), buf.size(), 0).is_ok());
    // Eight fresh blocks come from one reservation carve, so they are
    // device-contiguous and the copy loop issues ONE streaming store for
    // the whole write instead of one per 4 KB block.
    EXPECT_EQ(fc.nt_stores(), 1u);
    EXPECT_EQ(fc.nt_lines(), buf.size() / nvmm::kCacheLine);
  }
  {
    // Same shape on the overwrite: the extent is contiguous, one stream,
    // one metadata line, two fences — for a 32 KB write.
    nvmm::FlushCounter fc;
    ASSERT_TRUE(p().pwrite(fd, buf.data(), buf.size(), 0).is_ok());
    EXPECT_EQ(fc.nt_stores(), 1u);
    EXPECT_EQ(fc.persist_lines(), 1u);
    EXPECT_EQ(fc.fences(), 2u);
  }
}

TEST_F(FsDataTest, OverwriteDoesNotGrowFile) {
  const int fd = make_file("/ow");
  ASSERT_TRUE(p().pwrite(fd, "ABCDEFGH", 8, 0).is_ok());
  ASSERT_TRUE(p().pwrite(fd, "xy", 2, 2).is_ok());
  EXPECT_EQ(p().stat("/ow")->size, 8u);
  char buf[8];
  ASSERT_TRUE(p().pread(fd, buf, 8, 0).is_ok());
  EXPECT_EQ(std::string(buf, 8), "ABxyEFGH");
}

}  // namespace
}  // namespace simurgh::testing
