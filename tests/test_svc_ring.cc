// Metadata-service mode tests (DESIGN.md §13): the arbitrated trust
// boundary over the direct data path.  Two FileSystem instances share one
// nvmm+shm pair; the first to enable service mode owns the arbiter seat and
// the other becomes a ring client.  Covers the FsStat arbitration proof
// (zero unarbitrated mutations), ring wrap-around, full-ring backpressure,
// dead-client slot reaping, forged-capability refusal, and the acceptance
// scenario: the owner dies mid-rename, a client elects itself, the armed
// request rolls forward exactly once, and the remounted image passes fsck
// including the CRC pass.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/check.h"
#include "core/fs.h"
#include "core/svc_ring.h"

namespace simurgh::testing {
namespace {

using core::kOpenCreate;
using core::kOpenExcl;
using core::kOpenRead;
using core::kOpenWrite;
using core::MetaService;
using core::SvcOp;

std::uint64_t mono_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

class SvcRingTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNvmmSize = 256ull << 20;
  static constexpr std::size_t kShmSize = 16ull << 20;

  void SetUp() override {
    nvmm_ = std::make_unique<nvmm::Device>(kNvmmSize);
    shm_ = std::make_unique<nvmm::Device>(kShmSize);
    fs_a_ = core::FileSystem::format(*nvmm_, *shm_);
    fs_b_ = core::FileSystem::mount(*nvmm_, *shm_);
    ASSERT_TRUE(fs_a_->enable_service_mode().is_ok());
    ASSERT_TRUE(fs_b_->enable_service_mode().is_ok());
    pa_ = fs_a_->open_process(1000, 1000);
    pb_ = fs_b_->open_process(1000, 1000);
    // First enabler owns the seat.
    ASSERT_TRUE(fs_a_->meta_service()->is_owner());
    ASSERT_FALSE(fs_b_->meta_service()->is_owner());
  }

  core::Process& a() { return *pa_; }
  core::Process& b() { return *pb_; }
  MetaService& ma() { return *fs_a_->meta_service(); }
  MetaService& mb() { return *fs_b_->meta_service(); }

  std::unique_ptr<nvmm::Device> nvmm_;
  std::unique_ptr<nvmm::Device> shm_;
  std::unique_ptr<core::FileSystem> fs_a_;
  std::unique_ptr<core::FileSystem> fs_b_;
  std::unique_ptr<core::Process> pa_;
  std::unique_ptr<core::Process> pb_;
};

// ---- the arbitration proof: every client mutation crosses the ring ----

TEST_F(SvcRingTest, ClientMutationsAreAllArbitrated) {
  ASSERT_TRUE(b().mkdir("/d").is_ok());
  const int fd = *b().open("/d/f", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(b().close(fd).is_ok());
  ASSERT_TRUE(b().link("/d/f", "/d/g").is_ok());
  ASSERT_TRUE(b().symlink("f", "/d/s").is_ok());
  ASSERT_TRUE(b().chmod("/d/f", 0600).is_ok());
  ASSERT_TRUE(b().rename("/d/g", "/d/h").is_ok());
  ASSERT_TRUE(b().unlink("/d/h").is_ok());
  ASSERT_TRUE(b().unlink("/d/s").is_ok());

  const core::FsStat sb = fs_b_->fsstat();
  // The client mount never took the local fast path: requests only.
  EXPECT_EQ(sb.svc_local_fastpath, 0u);
  EXPECT_GE(sb.svc_requests, 8u);
  // The owner dispatched them all (and took no client detour itself).
  const core::FsStat sa = fs_a_->fsstat();
  EXPECT_GE(sa.svc_served, sb.svc_requests);
  EXPECT_EQ(sa.svc_requests, 0u);
  // Both mounts agree on the arbitrated namespace.
  EXPECT_TRUE(a().stat("/d/f").is_ok());
  EXPECT_FALSE(a().stat("/d/h").is_ok());
}

TEST_F(SvcRingTest, OwnerMutationsTakeTheLocalFastPath) {
  ASSERT_TRUE(a().mkdir("/own").is_ok());
  ASSERT_TRUE(a().rmdir("/own").is_ok());
  const core::FsStat sa = fs_a_->fsstat();
  EXPECT_EQ(sa.svc_requests, 0u);
  EXPECT_GE(sa.svc_local_fastpath, 2u);
}

// ---- data path stays direct ----

TEST_F(SvcRingTest, ReadsAndWritesBypassTheRing) {
  const int fd = *b().open("/data", kOpenCreate | kOpenRead | kOpenWrite);
  const core::FsStat before = fs_b_->fsstat();
  std::vector<char> buf(64 << 10, 'x');
  ASSERT_TRUE(b().pwrite(fd, buf.data(), buf.size(), 0).is_ok());
  std::vector<char> back(buf.size());
  ASSERT_TRUE(b().pread(fd, back.data(), back.size(), 0).is_ok());
  ASSERT_TRUE(b().close(fd).is_ok());
  EXPECT_EQ(buf, back);
  // The only ring traffic a write may generate is a reservation carve;
  // namespace requests did not move.
  const core::FsStat after = fs_b_->fsstat();
  EXPECT_LE(after.svc_requests - before.svc_requests, 2u);
  // The owner reads the client's bytes straight from NVMM.
  const int fa = *a().open("/data", kOpenRead);
  ASSERT_TRUE(a().pread(fa, back.data(), back.size(), 0).is_ok());
  EXPECT_EQ(buf, back);
}

TEST_F(SvcRingTest, CreateExclusiveSemanticsSurviveArbitration) {
  const auto first = b().open("/x", kOpenCreate | kOpenExcl | kOpenWrite);
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(b().close(*first).is_ok());
  const auto dup = b().open("/x", kOpenCreate | kOpenExcl | kOpenWrite);
  ASSERT_FALSE(dup.is_ok());
  EXPECT_EQ(dup.status().code(), Errc::exists);
  // Plain O_CREAT on an existing path degrades to open, cross-mount.
  const auto reopen = a().open("/x", kOpenCreate | kOpenRead);
  ASSERT_TRUE(reopen.is_ok());
}

TEST_F(SvcRingTest, ClientPermissionChecksRunAsTheRequester) {
  auto root = fs_a_->open_process(0, 0);
  ASSERT_TRUE(root->mkdir("/locked", 0700).is_ok());
  // The arbiter must evaluate the CLIENT's credentials, not its own.
  auto other = fs_b_->open_process(2000, 2000);
  EXPECT_EQ(other->mkdir("/locked/nope").code(), Errc::permission);
}

// ---- ring mechanics ----

TEST_F(SvcRingTest, TicketWrapsAroundTheSlotArray) {
  const unsigned n = mb().n_slots();
  const unsigned total = 3 * n + 5;
  const protsec::Credentials cred{1000, 1000};
  for (unsigned i = 0; i < total; ++i)
    ASSERT_TRUE(mb().request(SvcOp::kNoop, cred, {}, {}, 0, 0).is_ok()) << i;
  // Every claim advanced the shared ticket, so the round-robin start has
  // lapped the array at least three times.
  EXPECT_GE(mb().ring_header()->ticket.load(), total);
  EXPECT_GE(fs_a_->fsstat().svc_served, total);
}

TEST_F(SvcRingTest, FullRingBackpressureBlocksThenDrains) {
  const unsigned n = mb().n_slots();
  // Park every slot as a fresh claim by a phantom peer: not reapable (the
  // stamps are young) and not servable (never posted).
  for (unsigned i = 0; i < n; ++i) {
    core::SvcSlot* s = mb().slot(i);
    s->client_token.store(0xfeedu, std::memory_order_relaxed);
    s->client_stamp_ns.store(mono_ns(), std::memory_order_relaxed);
    s->phase.store(core::kSvcClaimed, std::memory_order_release);
  }
  std::atomic<bool> done{false};
  std::thread t([&] {
    const protsec::Credentials cred{1000, 1000};
    ASSERT_TRUE(mb().request(SvcOp::kNoop, cred, {}, {}, 0, 0).is_ok());
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load());  // all slots busy: the client is spinning
  // One slot frees; the spinner claims it and completes.
  mb().slot(0)->phase.store(core::kSvcFree, std::memory_order_release);
  t.join();
  EXPECT_TRUE(done.load());
  // Unwedge the remaining parked slots for teardown.
  for (unsigned i = 1; i < n; ++i)
    mb().slot(i)->phase.store(core::kSvcFree, std::memory_order_release);
}

TEST_F(SvcRingTest, DeadClientClaimsAreReaped) {
  const unsigned n = mb().n_slots();
  // Every slot was claimed by a peer that died: stamps far beyond the
  // lease.  A live client must reap one instead of spinning forever.
  for (unsigned i = 0; i < n; ++i) {
    core::SvcSlot* s = mb().slot(i);
    s->client_token.store(0xdeadu, std::memory_order_relaxed);
    s->client_stamp_ns.store(1, std::memory_order_relaxed);
    s->phase.store(core::kSvcClaimed, std::memory_order_release);
  }
  const protsec::Credentials cred{1000, 1000};
  EXPECT_TRUE(mb().request(SvcOp::kNoop, cred, {}, {}, 0, 0).is_ok());
  for (unsigned i = 0; i < n; ++i) {
    core::SvcSlot* s = mb().slot(i);
    std::uint32_t ph = core::kSvcClaimed;
    s->phase.compare_exchange_strong(ph, core::kSvcFree);
  }
}

TEST_F(SvcRingTest, DeadWaitersResponseSlotIsFreedNotParked) {
  // A posted request whose waiter died: the server publishes, sees the
  // expired client stamp, and frees the slot instead of parking it kDone.
  core::SvcSlot* s = mb().slot(0);
  ASSERT_EQ(s->phase.load(), core::kSvcFree);
  s->client_token.store(0xdeadu, std::memory_order_relaxed);
  s->client_stamp_ns.store(1, std::memory_order_relaxed);
  s->op = static_cast<std::uint32_t>(SvcOp::kNoop);
  s->p1_len = s->p2_len = 0;
  s->cap = 0;  // wrong for the phantom token — refused, but still published
  s->attempts.store(0, std::memory_order_relaxed);
  s->phase.store(core::kSvcPosted, std::memory_order_release);
  const auto deadline = mono_ns() + 2'000'000'000ull;
  while (s->phase.load(std::memory_order_acquire) != core::kSvcFree &&
         mono_ns() < deadline)
    std::this_thread::yield();
  EXPECT_EQ(s->phase.load(), core::kSvcFree);
}

TEST_F(SvcRingTest, ForgedCapabilityIsRefused) {
  mb().override_capability(0xbadc0ffee0ddf00dull);
  EXPECT_EQ(b().mkdir("/forged").code(), Errc::permission);
  EXPECT_FALSE(a().stat("/forged").is_ok());
}

TEST_F(SvcRingTest, PathBeyondSlotCapacityIsRejectedClientSide) {
  const std::string longname(core::kSvcMaxPath + 10, 'p');
  EXPECT_EQ(b().mkdir("/" + longname).code(), Errc::name_too_long);
}

// ---- owner death and failover ----

TEST_F(SvcRingTest, CleanOwnerShutdownHandsTheSeatOver) {
  pa_.reset();
  fs_a_->unmount();
  fs_a_.reset();
  // The resigned seat is empty; the client's next mutation elects itself.
  ASSERT_TRUE(b().mkdir("/after-resign").is_ok());
  EXPECT_TRUE(mb().is_owner());
  EXPECT_TRUE(b().stat("/after-resign").is_ok());
}

TEST_F(SvcRingTest, OwnerCrashMidRenameRollsForwardOnFailover) {
  // Short leases so election is prompt: owner lease = 2 x registry lease.
  fs_a_->set_lease_ns(5'000'000);
  fs_b_->set_lease_ns(5'000'000);
  ASSERT_TRUE(b().mkdir("/mv").is_ok());
  const int fd = *b().open("/mv/src", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(b().pwrite(fd, "payload", 7, 0).is_ok());
  ASSERT_TRUE(b().close(fd).is_ok());

  // The owner's server thread dies mid-rename, after the shadow entry is
  // created and marked — the worst window: locks held, protocol torn.
  ma().arm_server_failpoint("dir.rename.marked");
  ASSERT_TRUE(b().rename("/mv/src", "/mv/dst").is_ok());
  EXPECT_TRUE(ma().server_crashed());
  // The waiting client elected itself and re-served its own armed slot.
  EXPECT_TRUE(mb().is_owner());
  EXPECT_GE(mb().failovers(), 1u);
  EXPECT_GE(fs_b_->fsstat().svc_failovers, 1u);

  // Exactly-once: the rename applied, the source is gone, bytes intact.
  EXPECT_FALSE(b().stat("/mv/src").is_ok());
  const int rd = *b().open("/mv/dst", kOpenRead);
  char buf[8] = {};
  ASSERT_TRUE(b().pread(rd, buf, 7, 0).is_ok());
  EXPECT_EQ(std::string(buf, 7), "payload");
  // The new owner keeps arbitrating: the old owner's mount is now a
  // client whose requests the new seat serves.
  ASSERT_TRUE(b().mkdir("/mv/after").is_ok());

  // A whole-system restart over the surviving image must recover and pass
  // fsck — including the CRC pass over /mv/dst's stamped blocks.
  pb_.reset();
  pa_.reset();
  fs_b_.reset();
  fs_a_.reset();
  shm_->wipe();
  auto fs = core::FileSystem::mount(*nvmm_, *shm_);
  const core::CheckReport cr = core::check_fs(*fs);
  EXPECT_TRUE(cr.ok()) << cr.summary();
  EXPECT_EQ(cr.crc_mismatches, 0u);
  auto p = fs->open_process(1000, 1000);
  EXPECT_EQ(p->stat("/mv/dst")->size, 7u);
}

TEST_F(SvcRingTest, ServiceCountersSurfaceInFsStat) {
  ASSERT_TRUE(b().mkdir("/stats").is_ok());
  const core::FsStat sa = fs_a_->fsstat();
  const core::FsStat sb = fs_b_->fsstat();
  EXPECT_GE(sa.svc_served, 1u);
  EXPECT_GE(sb.svc_requests, 1u);
  EXPECT_EQ(sa.svc_failovers, sb.svc_failovers);
}

// ---- durability-class arbitration ----

TEST_F(SvcRingTest, SetDurabilityIsArbitratedButAppliedLocally) {
  const int fd = *b().open("/wb", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(b().close(fd).is_ok());
  const core::FsStat before = fs_b_->fsstat();
  ASSERT_TRUE(
      b().set_durability("/wb", core::Durability::group).is_ok());
  EXPECT_GT(fs_b_->fsstat().svc_requests, before.svc_requests);
  // And the fd form routes through the ring as well.
  const int fd2 = *b().open("/wb", kOpenWrite);
  ASSERT_TRUE(b().set_durability(fd2, core::Durability::async).is_ok());
  ASSERT_TRUE(b().close(fd2).is_ok());
}

}  // namespace
}  // namespace simurgh::testing
