// Decentralized crash recovery walkthrough (§4.3, §5.5).
//
// Demonstrates the paper's two recovery paths on live structures:
//  1. runtime recovery — a client dies holding a directory-line busy lock
//     mid-delete; a *surviving* client on the same hash line detects the
//     expired lease, repairs the line and continues (no daemon, no kernel);
//  2. full recovery — the whole system "loses power" mid-rename and the
//     next mount's mark-and-sweep restores a consistent namespace.
#include <cstdio>

#include "common/failpoint.h"
#include "core/fs.h"

using namespace simurgh;

int main() {
  nvmm::Device pmem(256ull << 20);
  nvmm::Device shm(16ull << 20);
  auto fs = core::FileSystem::format(pmem, shm);
  fs->set_lease_ns(2'000'000);  // 2 ms lease so the demo is instant
  auto alice = fs->open_process(1000, 1000);
  auto bob = fs->open_process(1001, 1000);

  SIMURGH_CHECK(alice->mkdir("/shared", 0777).is_ok());
  SIMURGH_CHECK(
      alice->open("/shared/doc", core::kOpenCreate | core::kOpenWrite)
          .is_ok());

  // --- 1. runtime recovery -------------------------------------------
  std::printf("[1] alice dies mid-unlink (entry invalidated, line locked)\n");
  FailPoint::arm("dir.remove.entry_invalidated");
  try {
    (void)alice->unlink("/shared/doc");
  } catch (const CrashedException&) {
    std::printf("    ...alice is gone; the line's busy flag is abandoned\n");
  }
  FailPoint::disarm();

  // Bob touches the same name: same hash line. He waits out the lease,
  // steals the lock, finishes alice's delete, and proceeds with his own op.
  auto st = bob->stat("/shared/doc");
  std::printf("[1] bob stats the file: %s (the interrupted delete was "
              "completed by the survivor)\n",
              std::string(errc_name(st.code())).c_str());
  SIMURGH_CHECK(st.code() == Errc::not_found);
  SIMURGH_CHECK(
      bob->open("/shared/doc", core::kOpenCreate | core::kOpenWrite)
          .is_ok());
  std::printf("[1] bob recreated the name: runtime recovery OK\n\n");

  // --- 2. full-system recovery ---------------------------------------
  std::printf("[2] power fails mid-rename (hash line left inconsistent)\n");
  FailPoint::arm("dir.rename.line_inconsistent");
  try {
    (void)bob->rename("/shared/doc", "/shared/doc.v2");
  } catch (const CrashedException&) {
    std::printf("    ...system down between rename steps 5 and 7\n");
  }
  FailPoint::disarm();

  alice.reset();
  bob.reset();
  fs.reset();   // all volatile state gone
  shm.wipe();
  fs = core::FileSystem::mount(pmem, shm);  // unclean -> recovery runs
  auto report = fs->recover();
  auto proc = fs->open_process(1000, 1000);
  const bool old_name = proc->stat("/shared/doc").is_ok();
  const bool new_name = proc->stat("/shared/doc.v2").is_ok();
  std::printf("[2] after mark-and-sweep (%llu committed, %llu reclaimed): "
              "old=%d new=%d — exactly one name survives\n",
              static_cast<unsigned long long>(report.committed_objects),
              static_cast<unsigned long long>(report.reclaimed_objects),
              old_name, new_name);
  SIMURGH_CHECK(old_name != new_name);
  std::printf("crash_recovery OK\n");
  return 0;
}
