// A varmail-style mail server on the real Simurgh library with *real*
// threads: many workers create, append, fsync, read and delete messages in
// one shared spool directory — exactly the shared-directory pattern the
// paper says kernel file systems serialize on (Fig. 7b) and Simurgh's
// per-line busy locks make concurrent.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/fs.h"

using namespace simurgh;

int main() {
  nvmm::Device pmem(512ull << 20);
  nvmm::Device shm(32ull << 20);
  auto fs = core::FileSystem::format(pmem, shm);
  auto admin = fs->open_process(0, 0);
  SIMURGH_CHECK(admin->mkdir("/spool", 0777).is_ok());

  constexpr int kWorkers = 8;
  constexpr int kMailsPerWorker = 3000;
  std::atomic<std::uint64_t> delivered{0}, read_back{0}, expunged{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      // Each worker acts as an independent client process sharing the
      // mapped devices — the decentralized setting of §4.
      auto proc = fs->open_process(1000 + w, 1000);
      Rng rng(w);
      char body[2048];
      for (int i = 0; i < kMailsPerWorker; ++i) {
        const std::string mail =
            "/spool/msg_" + std::to_string(w) + "_" + std::to_string(i);
        auto fd = proc->open(mail, core::kOpenCreate | core::kOpenWrite |
                                       core::kOpenAppend);
        if (!fd.is_ok()) continue;
        const std::size_t len = 256 + rng.below(sizeof body - 256);
        SIMURGH_CHECK(proc->write(*fd, body, len).is_ok());
        SIMURGH_CHECK(proc->fsync(*fd).is_ok());
        SIMURGH_CHECK(proc->close(*fd).is_ok());
        delivered.fetch_add(1, std::memory_order_relaxed);

        // Occasionally re-read a previous message...
        if (i > 10 && rng.below(4) == 0) {
          const std::string old = "/spool/msg_" + std::to_string(w) + "_" +
                                  std::to_string(i - 10);
          auto rfd = proc->open(old, core::kOpenRead);
          if (rfd.is_ok()) {
            char buf[2048];
            if (proc->read(*rfd, buf, sizeof buf).is_ok())
              read_back.fetch_add(1, std::memory_order_relaxed);
            (void)proc->close(*rfd);
          }
        }
        // ...and expunge an even older one.
        if (i > 20 && rng.below(4) == 0) {
          const std::string old = "/spool/msg_" + std::to_string(w) + "_" +
                                  std::to_string(i - 20);
          if (proc->unlink(old).is_ok())
            expunged.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  const auto wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();

  auto remaining = admin->readdir("/spool");
  SIMURGH_CHECK(remaining.is_ok());
  std::printf("delivered %llu mails, re-read %llu, expunged %llu "
              "(%zu remain) in %.2fs wall with %d workers\n",
              static_cast<unsigned long long>(delivered.load()),
              static_cast<unsigned long long>(read_back.load()),
              static_cast<unsigned long long>(expunged.load()),
              remaining->size(), wall, kWorkers);
  SIMURGH_CHECK(remaining->size() == delivered.load() - expunged.load());

  // Verify the spool survives a crash-recovery cycle intact.
  const auto report = fs->recover();
  std::printf("post-run recovery: %llu files, %llu dirs, %.3fs, "
              "%llu objects reclaimed\n",
              static_cast<unsigned long long>(report.files),
              static_cast<unsigned long long>(report.directories),
              report.seconds,
              static_cast<unsigned long long>(report.reclaimed_objects));
  std::printf("mailserver OK\n");
  return 0;
}
