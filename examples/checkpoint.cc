// HPC checkpointing on node-local NVMM — the burst-buffer use case the
// paper's introduction motivates (§1, §2 "Opportunities for HPC").
//
// N simulated MPI ranks each stream a checkpoint of their local state into
// the Simurgh file system, rotating the last K checkpoints; one rank then
// "fails" mid-checkpoint (injected crash), and the restart path shows the
// file system recovering and the application restoring the newest complete
// checkpoint set.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/fs.h"

using namespace simurgh;

namespace {
constexpr int kRanks = 4;
constexpr int kEpochs = 5;
constexpr int kKeep = 2;
constexpr std::size_t kStateBytes = 4 << 20;  // per-rank state

std::string ckpt_path(int rank, int epoch) {
  return "/ckpt/rank" + std::to_string(rank) + "/epoch" +
         std::to_string(epoch) + ".dat";
}
}  // namespace

int main() {
  nvmm::Device pmem(1ull << 30);
  nvmm::Device shm(32ull << 20);
  auto fs = core::FileSystem::format(pmem, shm);
  auto root = fs->open_process(0, 0);
  SIMURGH_CHECK(root->mkdir("/ckpt", 0777).is_ok());
  for (int r = 0; r < kRanks; ++r)
    SIMURGH_CHECK(
        root->mkdir("/ckpt/rank" + std::to_string(r), 0777).is_ok());

  // Checkpoint epochs: all ranks write concurrently; old epochs rotate out.
  std::vector<std::thread> ranks;
  for (int r = 0; r < kRanks; ++r) {
    ranks.emplace_back([&, r] {
      auto proc = fs->open_process(1000 + r, 1000);
      std::vector<char> state(kStateBytes, static_cast<char>('A' + r));
      for (int e = 0; e < kEpochs; ++e) {
        std::memset(state.data(), 'A' + r + e, 64);  // evolving state
        auto fd = proc->open(ckpt_path(r, e),
                             core::kOpenCreate | core::kOpenWrite);
        SIMURGH_CHECK(fd.is_ok());
        // Stream in 1 MB slabs (non-temporal stores, data fenced before
        // the size update — §4.3).
        for (std::size_t off = 0; off < state.size(); off += 1 << 20)
          SIMURGH_CHECK(
              proc->pwrite(*fd, state.data() + off, 1 << 20, off).is_ok());
        SIMURGH_CHECK(proc->fsync(*fd).is_ok());
        SIMURGH_CHECK(proc->close(*fd).is_ok());
        if (e >= kKeep)
          SIMURGH_CHECK(proc->unlink(ckpt_path(r, e - kKeep)).is_ok());
      }
    });
  }
  for (auto& t : ranks) t.join();
  std::printf("%d ranks wrote %d epochs each (keeping last %d)\n", kRanks,
              kEpochs, kKeep);

  // Rank 0 crashes while writing epoch 5: the injected crash aborts its
  // create mid-protocol, exactly like a killed process.
  {
    auto proc = fs->open_process(1000, 1000);
    FailPoint::arm("fs.create.published");
    try {
      (void)proc->open(ckpt_path(0, kEpochs),
                       core::kOpenCreate | core::kOpenWrite);
      std::printf("unexpected: crash point did not fire\n");
    } catch (const CrashedException& e) {
      std::printf("rank 0 crashed mid-checkpoint at '%.*s'\n",
                  static_cast<int>(e.point.size()), e.point.data());
    }
    FailPoint::disarm();
  }

  // Restart: remount (runs full recovery), then restore the newest epoch
  // that every rank completed.
  root.reset();
  fs.reset();
  shm.wipe();
  fs = core::FileSystem::mount(pmem, shm);
  auto proc = fs->open_process(0, 0);
  const auto report = fs->recover();
  std::printf("recovery: %llu files, %llu reclaimed objects, %.3fs\n",
              static_cast<unsigned long long>(report.files),
              static_cast<unsigned long long>(report.reclaimed_objects),
              report.seconds);

  for (int e = kEpochs - 1; e >= 0; --e) {
    bool complete = true;
    for (int r = 0; r < kRanks; ++r) {
      auto st = proc->stat(ckpt_path(r, e));
      if (!st.is_ok() || st->size != kStateBytes) complete = false;
    }
    if (complete) {
      std::printf("restoring from epoch %d\n", e);
      for (int r = 0; r < kRanks; ++r) {
        auto fd = proc->open(ckpt_path(r, e), core::kOpenRead);
        SIMURGH_CHECK(fd.is_ok());
        char probe[64];
        SIMURGH_CHECK(proc->read(*fd, probe, sizeof probe).is_ok());
        SIMURGH_CHECK(probe[0] == 'A' + r + e);
      }
      std::printf("checkpoint OK\n");
      return 0;
    }
  }
  std::printf("no complete checkpoint epoch found!\n");
  return 1;
}
