// Protected functions beyond file systems (§3: "the concept of protected
// functions can be applied to the protected execution of arbitrary user
// level services ... or to the design of complete microkernel operating
// systems").
//
// This example builds such a service: an in-memory quota ledger whose
// state lives on kernel-marked pages that user code cannot touch, with all
// mutation going through jmpp entry points that enforce per-user quotas.
// A "malicious" caller then tries every bypass the hardware model must
// stop: writing the state directly, jumping into the middle of the code,
// remapping the protected page, and returning without pret.
#include <cstdio>

#include "protsec/bootstrap.h"

using namespace simurgh;
using namespace simurgh::protsec;

namespace {

struct LedgerState {
  static constexpr int kUsers = 4;
  std::uint64_t used[kUsers] = {};
  std::uint64_t quota[kUsers] = {100, 100, 50, 10};
};

struct ChargeArgs {
  std::uint32_t user;
  std::uint64_t amount;
};

}  // namespace

int main() {
  PageTable pt;
  Gateway gw(pt);
  Bootstrap boot(pt, gw);
  boot.whitelist("quota-service");

  // The service state lives on a kernel page (user bit off): requirement 1
  // of §3.1 — normal functions cannot access service data.
  LedgerState state;
  Pte data_page;
  data_page.user = false;
  data_page.writable = true;
  const std::uint64_t state_vaddr = 0x4200'0000;
  SIMURGH_CHECK(pt.map(Cpl::kernel, state_vaddr, data_page) == Fault::none);

  // Entry 0: charge(user, amount) -> 1 on success, 0 if over quota.
  // Entry 1: usage(user) -> used amount.
  auto h = boot.load_protected(
      "quota-service",
      {[&](void* a) -> std::uint64_t {
         const auto* args = static_cast<const ChargeArgs*>(a);
         if (args->user >= LedgerState::kUsers) return 0;
         if (state.used[args->user] + args->amount >
             state.quota[args->user])
           return 0;
         state.used[args->user] += args->amount;
         return 1;
       },
       [&](void* a) -> std::uint64_t {
         const auto u = *static_cast<const std::uint32_t*>(a);
         return u < LedgerState::kUsers ? state.used[u] : ~0ull;
       }},
      Credentials{1000, 1000});
  SIMURGH_CHECK(h.is_ok());

  // --- legitimate use through jmpp ---
  std::uint64_t ok = 0;
  ChargeArgs c{2, 30};
  SIMURGH_CHECK(gw.jmpp(h->entry(0), &c, &ok) == Fault::none);
  std::printf("charge(user=2, 30): %s\n", ok ? "granted" : "denied");
  c.amount = 25;
  SIMURGH_CHECK(gw.jmpp(h->entry(0), &c, &ok) == Fault::none);
  std::printf("charge(user=2, 25): %s (quota 50)\n",
              ok ? "granted" : "denied");
  std::uint32_t u = 2;
  std::uint64_t used = 0;
  SIMURGH_CHECK(gw.jmpp(h->entry(1), &u, &used) == Fault::none);
  std::printf("usage(user=2) = %llu\n",
              static_cast<unsigned long long>(used));

  // --- attacks the hardware model must stop ---
  std::printf("\nattack 1: write the ledger page from user mode -> %s\n",
              std::string(fault_name(
                  pt.check_write(Cpl::user, state_vaddr)))
                  .c_str());
  std::printf("attack 2: jmpp into the middle of the service code -> %s\n",
              std::string(fault_name(gw.jmpp(h->entry(0) + 0x20, &c)))
                  .c_str());
  Pte writable;
  writable.user = true;
  writable.writable = true;
  std::printf("attack 3: remap the protected page writable -> %s\n",
              std::string(fault_name(
                  pt.remap(Cpl::user, h->base_vaddr, writable)))
                  .c_str());
  std::printf("attack 4: pret without a jmpp -> %s\n",
              std::string(fault_name(gw.pret())).c_str());
  std::printf("attack 5: mark an attacker page ep from user mode -> %s\n",
              std::string(fault_name(pt.map(Cpl::user, 0x6660000, [] {
                Pte p;
                p.ep = true;
                return p;
              }()))).c_str());

  // The ledger is intact after all of it: the first charge (30) was
  // granted, the second (25) denied at the 50 quota.
  SIMURGH_CHECK(gw.jmpp(h->entry(1), &u, &used) == Fault::none);
  SIMURGH_CHECK(used == 30);
  std::printf("\nledger intact (user 2 at %llu of quota 50)\n",
              static_cast<unsigned long long>(used));
  std::printf("protected_service OK\n");
  return 0;
}
