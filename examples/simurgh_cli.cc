// simurgh_cli — mkfs/fsck/shell utility over a *file-backed* device, so the
// file system persists across invocations (the fsdax-style deployment).
//
//   simurgh_cli <image> mkfs [size_mb]
//   simurgh_cli <image> ls <dir>
//   simurgh_cli <image> mkdir <dir>
//   simurgh_cli <image> put <path> <text...>
//   simurgh_cli <image> cat <path>
//   simurgh_cli <image> rm <path>
//   simurgh_cli <image> mv <from> <to>
//   simurgh_cli <image> stat <path>
//   simurgh_cli <image> df
//   simurgh_cli <image> fsck          # force a full mark-and-sweep
//
// Example session:
//   ./simurgh_cli /tmp/pm.img mkfs 256
//   ./simurgh_cli /tmp/pm.img mkdir /notes
//   ./simurgh_cli /tmp/pm.img put /notes/a.txt hello persistent world
//   ./simurgh_cli /tmp/pm.img cat /notes/a.txt
#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/fs.h"

using namespace simurgh;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: simurgh_cli <image> "
               "{mkfs [mb]|ls|mkdir|put|cat|rm|mv|stat|df|fsck} [args]\n");
  return 2;
}

const char* type_name(std::uint32_t mode) {
  switch (mode & core::kModeTypeMask) {
    case core::kModeDir: return "dir";
    case core::kModeFile: return "file";
    case core::kModeSymlink: return "symlink";
  }
  return "?";
}

int err(const char* what, Errc e) {
  std::fprintf(stderr, "%s: %s\n", what,
               std::string(errc_name(e)).c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string image = argv[1];
  const std::string cmd = argv[2];

  if (cmd == "mkfs") {
    const std::size_t mb = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 256;
    nvmm::Device dev(image, mb << 20);
    dev.wipe();  // re-formatting a used image must clear stale state
    nvmm::Device shm(8ull << 20);
    auto fs = core::FileSystem::format(dev, shm);
    fs->unmount();
    std::printf("formatted %s: %zu MB, block size 4096\n", image.c_str(), mb);
    return 0;
  }

  // All other commands mount the existing image.  The shm device is
  // volatile per-invocation, exactly as a reboot would leave it.
  struct ::stat sb {};
  if (::stat(image.c_str(), &sb) != 0 || sb.st_size == 0) {
    std::fprintf(stderr, "%s: no such image (run mkfs first)\n",
                 image.c_str());
    return 1;
  }
  nvmm::Device pmem(image, static_cast<std::size_t>(sb.st_size));
  nvmm::Device shm(8ull << 20);
  auto fs = core::FileSystem::mount(pmem, shm);
  auto proc = fs->open_process(1000, 1000);
  int rc = 0;

  if (cmd == "ls") {
    const std::string dir = argc > 3 ? argv[3] : "/";
    auto entries = proc->readdir(dir);
    if (!entries.is_ok()) return err("ls", entries.code());
    for (const auto& e : *entries) {
      auto st = proc->stat(dir + "/" + e.name);
      std::printf("%-8s %10llu  %s\n",
                  st.is_ok() ? type_name(st->mode) : "?",
                  st.is_ok() ? static_cast<unsigned long long>(st->size) : 0,
                  e.name.c_str());
    }
  } else if (cmd == "mkdir" && argc > 3) {
    Status st = proc->mkdir(argv[3]);
    if (!st.is_ok()) rc = err("mkdir", st.code());
  } else if (cmd == "put" && argc > 4) {
    std::string text;
    for (int i = 4; i < argc; ++i) {
      if (i > 4) text += ' ';
      text += argv[i];
    }
    text += '\n';
    auto fd = proc->open(argv[3], core::kOpenCreate | core::kOpenWrite |
                                      core::kOpenTrunc);
    if (!fd.is_ok()) return err("put", fd.code());
    auto n = proc->write(*fd, text.data(), text.size());
    if (!n.is_ok()) rc = err("put", n.code());
  } else if (cmd == "cat" && argc > 3) {
    auto fd = proc->open(argv[3], core::kOpenRead);
    if (!fd.is_ok()) return err("cat", fd.code());
    char buf[4096];
    for (;;) {
      auto n = proc->read(*fd, buf, sizeof buf);
      if (!n.is_ok()) return err("cat", n.code());
      if (*n == 0) break;
      std::fwrite(buf, 1, *n, stdout);
    }
  } else if (cmd == "rm" && argc > 3) {
    Status st = proc->unlink(argv[3]);
    if (st.code() == Errc::is_dir) st = proc->rmdir(argv[3]);
    if (!st.is_ok()) rc = err("rm", st.code());
  } else if (cmd == "mv" && argc > 4) {
    Status st = proc->rename(argv[3], argv[4]);
    if (!st.is_ok()) rc = err("mv", st.code());
  } else if (cmd == "stat" && argc > 3) {
    auto st = proc->stat(argv[3]);
    if (!st.is_ok()) return err("stat", st.code());
    std::printf("%s: %s mode=%o uid=%u gid=%u nlink=%u size=%llu ino=%llu\n",
                argv[3], type_name(st->mode), st->mode & 0xFFF, st->uid,
                st->gid, st->nlink,
                static_cast<unsigned long long>(st->size),
                static_cast<unsigned long long>(st->inode));
  } else if (cmd == "df") {
    auto st = fs->fsstat();
    std::printf("blocks: %llu total, %llu free (%.1f%% used), "
                "%llu live inodes\n",
                static_cast<unsigned long long>(st.total_blocks),
                static_cast<unsigned long long>(st.free_blocks),
                100.0 * static_cast<double>(st.total_blocks - st.free_blocks) /
                    static_cast<double>(st.total_blocks),
                static_cast<unsigned long long>(st.live_inodes));
  } else if (cmd == "fsck") {
    auto report = fs->recover();
    std::printf("fsck: %llu files, %llu dirs, %llu symlinks; "
                "%llu committed, %llu reclaimed; %.3fs\n",
                static_cast<unsigned long long>(report.files),
                static_cast<unsigned long long>(report.directories),
                static_cast<unsigned long long>(report.symlinks),
                static_cast<unsigned long long>(report.committed_objects),
                static_cast<unsigned long long>(report.reclaimed_objects),
                report.seconds);
  } else {
    return usage();
  }

  fs->unmount();
  return rc;
}
