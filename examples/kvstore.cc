// A LevelDB-shaped key-value store (minikv) running over the Simurgh
// backend — the paper's YCSB setting (§5.4) as a library user would wire
// it up.  Shows puts/gets/scans, LSM flushes + compactions hitting the
// file system, and the virtual-time cost accounting the harness uses.
#include <cstdio>

#include "baselines/simurgh_backend.h"
#include "common/rng.h"
#include "workloads/minikv.h"

using namespace simurgh;
using namespace simurgh::bench;

int main() {
  sim::SimWorld world;
  SimurghBackend fs(world);

  sim::SimThread t(0);
  MiniKv kv(fs, t);

  // Load some user records.
  Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    const std::string key = "user" + std::to_string(i);
    SIMURGH_CHECK(kv.put(t, key, 512 + rng.below(1024)).is_ok());
  }
  std::printf("loaded 3000 records; %zu sstables on disk, %llu compactions\n",
              kv.table_count(),
              static_cast<unsigned long long>(kv.compactions()));

  // Point lookups (memtable hits and table reads).
  int found = 0;
  for (int i = 0; i < 500; ++i)
    if (kv.get(t, "user" + std::to_string(rng.below(3000))).is_ok()) ++found;
  std::printf("500 random gets -> %d found\n", found);

  // Deletes are tombstones until compaction.
  SIMURGH_CHECK(kv.remove(t, "user42").is_ok());
  std::printf("user42 after delete: %s\n",
              kv.get(t, "user42").is_ok() ? "FOUND (bug!)" : "not_found");

  // Range scan.
  auto scanned = kv.scan(t, "user1", 50);
  SIMURGH_CHECK(scanned.is_ok());
  std::printf("scan from 'user1': %llu entries\n",
              static_cast<unsigned long long>(*scanned));

  // What did this cost on the modeled 2.5 GHz machine?
  const double secs = static_cast<double>(t.now()) / sim::kClockHz;
  std::printf("modeled time: %.3f ms  (app %llu / copy %llu / fs %llu "
              "kcycles)\n",
              secs * 1e3,
              static_cast<unsigned long long>(
                  t.bucket(sim::SimThread::Attr::app) / 1000),
              static_cast<unsigned long long>(
                  t.bucket(sim::SimThread::Attr::data_copy) / 1000),
              static_cast<unsigned long long>(
                  t.bucket(sim::SimThread::Attr::fs) / 1000));
  std::printf("kvstore OK\n");
  return 0;
}
