// Quickstart: format a Simurgh file system over an emulated NVMM device,
// do ordinary POSIX-style work through a Process handle, unmount, remount,
// and show the data survived.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "core/fs.h"

using namespace simurgh;

int main() {
  // "NVMM" = 256 MB emulated persistent device; "shm" = the volatile
  // shared-DRAM region every client process maps (per-file locks live
  // there).  On a real pmem machine, Device also accepts an fsdax path.
  nvmm::Device pmem(256ull << 20);
  nvmm::Device shm(16ull << 20);

  auto fs = core::FileSystem::format(pmem, shm);
  auto proc = fs->open_process(/*uid=*/1000, /*gid=*/1000);

  // Namespace basics.
  SIMURGH_CHECK(proc->mkdir("/projects").is_ok());
  SIMURGH_CHECK(proc->mkdir("/projects/simurgh").is_ok());

  auto fd = proc->open("/projects/simurgh/notes.txt",
                       core::kOpenCreate | core::kOpenWrite |
                           core::kOpenRead);
  SIMURGH_CHECK(fd.is_ok());
  const std::string text =
      "Simurgh: decentralized NVMM file system, entirely in user space.\n";
  SIMURGH_CHECK(proc->write(*fd, text.data(), text.size()).is_ok());
  SIMURGH_CHECK(proc->fsync(*fd).is_ok());  // just an sfence: no page cache

  // Read it back via a second, independent "process".
  auto other = fs->open_process(1000, 1000);
  auto rfd = other->open("/projects/simurgh/notes.txt", core::kOpenRead);
  SIMURGH_CHECK(rfd.is_ok());
  char buf[128] = {};
  auto n = other->read(*rfd, buf, sizeof buf);
  SIMURGH_CHECK(n.is_ok());
  std::printf("read back %zu bytes: %s", *n, buf);

  // Metadata: rename, hard link, symlink, stat.
  SIMURGH_CHECK(proc->rename("/projects/simurgh/notes.txt",
                             "/projects/simurgh/README").is_ok());
  SIMURGH_CHECK(
      proc->link("/projects/simurgh/README", "/projects/readme-alias")
          .is_ok());
  SIMURGH_CHECK(proc->symlink("/projects/simurgh", "/latest").is_ok());
  auto st = proc->stat("/latest/README");
  SIMURGH_CHECK(st.is_ok());
  std::printf("README: inode=%llu size=%llu nlink=%u\n",
              static_cast<unsigned long long>(st->inode),
              static_cast<unsigned long long>(st->size), st->nlink);

  // Clean unmount + remount: everything persists on the device.
  fs->unmount();
  proc.reset();
  other.reset();
  fs.reset();
  fs = core::FileSystem::mount(pmem, shm);
  proc = fs->open_process(1000, 1000);
  auto entries = proc->readdir("/projects/simurgh");
  SIMURGH_CHECK(entries.is_ok());
  std::printf("after remount, /projects/simurgh contains:\n");
  for (const auto& e : *entries) std::printf("  %s\n", e.name.c_str());
  std::printf("quickstart OK\n");
  return 0;
}
