#!/usr/bin/env bash
# One-shot static-analysis runner: everything `ctest -L static` gates, plus
# the clang analyze build when a clang toolchain is present.  Run it from
# anywhere; it configures build/ if needed.  Exit 0 means every applicable
# gate passed (clang-only gates report SKIP on GCC-only hosts).
#
#   tools/verify_static.sh            # full sweep
#   tools/verify_static.sh --fast     # pmlint only (no configure, <1s)
set -u

ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT"

run() {
  echo "==> $*"
  "$@"
}

if [ "${1:-}" = "--fast" ]; then
  exec python3 "$ROOT/tools/pmlint/pmlint.py" --root "$ROOT"
fi

fail=0

# 1. pmlint zero-findings baseline + its own negatives.
run python3 "$ROOT/tools/pmlint/pmlint.py" --root "$ROOT" || fail=1
run python3 "$ROOT/tests/static/check_pmlint_fixtures.py" \
    "$ROOT/tools/pmlint/pmlint.py" "$ROOT/tests/static/fixtures" || fail=1

# 2. Thread-safety analysis: negative compiles + the seal_open_locked
#    mutation (skip = 77 on hosts without clang).
run bash "$ROOT/tests/static/run_tsa_negative.sh" "$ROOT/src" \
    "$ROOT/tests/static/tsa_fixtures"
rc=$?; [ $rc -ne 0 ] && [ $rc -ne 77 ] && fail=1
run bash "$ROOT/tests/static/run_tsa_mutation.sh" "$ROOT/src"
rc=$?; [ $rc -ne 0 ] && [ $rc -ne 77 ] && fail=1

# 3. Full-tree analyze build under clang, when available.
if command -v clang++ >/dev/null 2>&1; then
  run cmake --preset analyze || fail=1
  run cmake --build --preset analyze -j "$(nproc)" || fail=1
else
  echo "SKIP: analyze preset (no clang++)"
fi

# 4. clang-tidy against the committed baseline (needs a configured build
#    for compile_commands.json; configure quietly if missing).
if [ ! -f "$ROOT/build/compile_commands.json" ]; then
  cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
fi
run bash "$ROOT/tests/static/run_clang_tidy.sh" "$ROOT" "$ROOT/build"
rc=$?; [ $rc -ne 0 ] && [ $rc -ne 77 ] && fail=1

if [ $fail -ne 0 ]; then
  echo "verify_static: FAILED"
  exit 1
fi
echo "verify_static: all applicable gates passed"
