#!/usr/bin/env python3
"""pmlint — NVMM store-discipline linter for the Simurgh tree.

Persistent-memory code has a failure mode ordinary static analysis never
looks for: a store that is *correct* in DRAM but silently non-durable,
because it never reached a flush (`nvmm::persist` / `nvmm::nt_copy`) or was
not ordered before its commit record by a fence.  The crash-image harness
(src/nvmm/shadow.h) makes such stores visibly disappear, but only for the
states a test happens to explore; pmlint enforces the discipline at the
source level, on every path.

Rules (each can be waived inline, see below):

  raw-mutex            std::mutex / std::lock_guard / std::unique_lock /
                       std::scoped_lock / std::shared_* in src/.  All
                       blocking synchronisation must go through the
                       annotated wrappers in common/thread_annotations.h
                       (common::Mutex / common::MutexLock) so the Clang
                       thread-safety analysis sees every acquisition.

  raw-device-store     memset / memcpy / memmove whose *destination* is
                       device-mapped memory (an expression naming the
                       device via .at( / ->at( / .base()) with no
                       nvmm::persist of that region within the next few
                       lines.  Plain stores into NVMM are lost on crash;
                       the two real bugs this rule caught (fresh-block
                       zero-fill, pool-segment scrub) are pinned by
                       tests/test_persist_discipline.cc.
                       src/nvmm/ itself is exempt: it *implements* the
                       flush primitives.

  fence-before-commit  A committing store that arms a journal/rename log
                       (`<word>.state.store(` / `committed_seq.store(`)
                       with no fence() / persist_now( earlier in the same
                       function.  The §4.3 protocol is: persist payload,
                       fence, then arm — an unfenced arm lets the commit
                       record land before its payload.

  rmw-persist          An atomic RMW on a persistent object's two-bit
                       `flags` word (compare_exchange / fetch_*) with no
                       persist within the next few lines.  The flag
                       protocol (alloc/layout.h) is only crash-consistent
                       if every transition is flushed before it is relied
                       on.

Waivers: append `// pmlint: allow(<rule>) <justification>` to the flagged
line, or put it on the line directly above.  The justification is
mandatory; a bare allow() is itself reported.

Engines: the default engine is a self-contained tokenizer (no third-party
dependencies — it must run in a bare container).  When python bindings for
libclang are importable and a compile_commands.json is given with
--compdb, `--engine clang` re-checks raw-mutex over real token streams;
the tokenizer engine remains authoritative for the store rules either way.

Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

RULES = {
    "raw-mutex": "raw std:: mutex/lock in annotated tree",
    "raw-device-store": "unflushed memset/memcpy/memmove into device memory",
    "fence-before-commit": "commit-word store with no earlier fence in function",
    "rmw-persist": "atomic flags RMW with no nearby persist",
}

# Lookahead windows (lines) for the proximity rules.  Generous enough for a
# justification comment between store and flush, tight enough that the
# flush is still obviously paired with the store.
DEVICE_STORE_WINDOW = 10
RMW_WINDOW = 6

WAIVER_RE = re.compile(
    r"//\s*pmlint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)\s*(.*)$")

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b")

MEM_FN_RE = re.compile(r"\b(?:std::)?(memset|memcpy|memmove)\s*\(")

DEVICE_EXPR_RE = re.compile(r"\bdev\w*(\(\))?\s*(\.|->)\s*(at\s*\(|base\s*\()")

COMMIT_STORE_RE = re.compile(r"\b\w+\.state\.store\(|\bcommitted_seq\.store\(")

FENCE_RE = re.compile(r"\bfence\s*\(\s*\)|\bpersist_now\s*\(")

RMW_RE = re.compile(r"\bflags\.(compare_exchange_\w+|fetch_\w+)\s*\(")

PERSIST_RE = re.compile(r"\bpersist(_now|_obj)?\s*\(|\bnt_copy\s*\(")

# Column-0 lines that start a new function body region in a .cc file — a
# cheap but reliable proxy for function boundaries in this codebase, whose
# style always puts definitions at column zero.
REGION_START_RE = re.compile(r"^[A-Za-z_].*\(|^\}")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self, root: str) -> str:
        rel = os.path.relpath(self.path, root)
        return f"{rel}:{self.line}: {self.rule}: {self.message}"


def scrub(text: str) -> list[str]:
    """Blank out comments and string/char literal contents, preserving the
    line structure so findings keep their line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line-comment | block-comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated (macro line continuation etc.)
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out).split("\n")


def parse_waivers(raw_lines: list[str], path: str,
                  findings: list[Finding]) -> dict[int, set[str]]:
    """Returns {0-based line: set(rules waived)}.  A waiver covers its own
    line and the next line, so it can trail the flagged statement or sit on
    a comment line directly above it."""
    waived: dict[int, set[str]] = {}
    for idx, line in enumerate(raw_lines):
        m = WAIVER_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        unknown = rules - set(RULES)
        if unknown:
            findings.append(Finding(path, idx + 1, "bad-waiver",
                                    f"unknown rule(s) {sorted(unknown)}"))
        if not m.group(2).strip():
            findings.append(Finding(path, idx + 1, "bad-waiver",
                                    "waiver without a justification"))
            continue
        for tgt in (idx, idx + 1):
            waived.setdefault(tgt, set()).update(rules)
    return waived


def first_arg(lines: list[str], row: int, col: int) -> str:
    """Extract the first argument of a call whose opening paren is at
    (row, col), spanning up to three physical lines."""
    text = "\n".join(lines[row:row + 3])
    # Re-find the paren in the joined text.
    pos = col
    depth = 0
    start = None
    for i in range(pos, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
            if depth == 1:
                start = i + 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return text[start:i]
        elif c == "," and depth == 1:
            return text[start:i]
    return text[start:] if start is not None else ""


def check_file(path: str, raw: str, findings: list[Finding]) -> None:
    raw_lines = raw.split("\n")
    lines = scrub(raw)
    waived = parse_waivers(raw_lines, path, findings)
    in_nvmm = f"{os.sep}nvmm{os.sep}" in path
    is_annotations_hdr = path.endswith(
        os.path.join("common", "thread_annotations.h"))

    def report(idx: int, rule: str, message: str) -> None:
        if rule in waived.get(idx, set()):
            return
        findings.append(Finding(path, idx + 1, rule, message))

    # Precompute function regions for fence-before-commit (only meaningful
    # in implementation files; headers here hold no commit protocols).
    region_of = [0] * len(lines)
    region = 0
    for idx, line in enumerate(lines):
        if REGION_START_RE.match(line):
            region += 1
        region_of[idx] = region

    for idx, line in enumerate(lines):
        if not is_annotations_hdr and RAW_MUTEX_RE.search(line):
            report(idx, "raw-mutex",
                   "use common::Mutex / common::MutexLock "
                   "(common/thread_annotations.h) so the thread-safety "
                   "analysis sees this lock")

        if not in_nvmm:
            for m in MEM_FN_RE.finditer(line):
                dest = first_arg(lines, idx, m.end() - 1)
                if not DEVICE_EXPR_RE.search(dest):
                    continue
                window = lines[idx:idx + DEVICE_STORE_WINDOW]
                if not any(PERSIST_RE.search(l) for l in window):
                    report(idx, "raw-device-store",
                           f"{m.group(1)} into device-mapped memory with no "
                           f"persist within {DEVICE_STORE_WINDOW} lines — "
                           "plain stores are lost on crash")

        if COMMIT_STORE_RE.search(line):
            fenced = any(
                FENCE_RE.search(lines[j])
                for j in range(idx - 1, -1, -1)
                if region_of[j] == region_of[idx])
            if not fenced:
                report(idx, "fence-before-commit",
                       "commit-word store with no fence()/persist_now( "
                       "earlier in this function — the payload may land "
                       "after its commit record")

        if RMW_RE.search(line):
            window = lines[idx:idx + RMW_WINDOW]
            if not any(PERSIST_RE.search(l) for l in window):
                report(idx, "rmw-persist",
                       f"atomic flags RMW with no persist within "
                       f"{RMW_WINDOW} lines — the flag transition is not "
                       "crash-durable")


def clang_recheck_raw_mutex(paths: list[str], compdb_dir: str,
                            findings: list[Finding]) -> bool:
    """Optional second engine: token streams from libclang, immune to any
    scrubber bug.  Returns False (engine unavailable) without complaint if
    the bindings or the compilation database are missing."""
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return False
    try:
        db = cindex.CompilationDatabase.fromDirectory(compdb_dir)
        index = cindex.Index.create()
    except Exception:
        return False
    wanted = {os.path.abspath(p) for p in paths}
    for cmd in db.getAllCompileCommands() or []:
        f = os.path.abspath(cmd.filename)
        if f not in wanted:
            continue
        args = [a for a in cmd.arguments][1:-1]
        try:
            tu = index.parse(f, args=args)
        except Exception:
            continue
        toks = list(tu.get_tokens(extent=tu.cursor.extent))
        for i, t in enumerate(toks):
            if t.spelling not in ("mutex", "lock_guard", "unique_lock",
                                  "scoped_lock", "shared_lock",
                                  "shared_mutex"):
                continue
            if i >= 2 and toks[i - 1].spelling == "::" and \
                    toks[i - 2].spelling == "std":
                loc = t.location
                if os.path.abspath(loc.file.name) in wanted:
                    findings.append(Finding(
                        loc.file.name, loc.line, "raw-mutex",
                        "std::" + t.spelling + " (libclang engine)"))
    return True


def collect_sources(roots: list[str]) -> list[str]:
    out = []
    for root in roots:
        if os.path.isfile(root):
            out.append(root)
            continue
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith((".cc", ".h", ".hpp", ".cpp")):
                    out.append(os.path.join(dirpath, name))
    return sorted(set(out))


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="pmlint", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", help="files or directories to lint "
                    "(default: <repo>/src)")
    ap.add_argument("--root", default=None, help="repo root for relative "
                    "finding paths (default: two levels above this script)")
    ap.add_argument("--engine", choices=("tokenizer", "clang"),
                    default="tokenizer",
                    help="clang adds a libclang re-check of raw-mutex when "
                    "the bindings are available (falls back silently)")
    ap.add_argument("--compdb", default=None,
                    help="directory holding compile_commands.json "
                    "(clang engine only)")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:22} {desc}")
        return 0

    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root or os.path.join(script_dir, "..", ".."))
    roots = args.paths or [os.path.join(root, "src")]
    for r in roots:
        if not os.path.exists(r):
            print(f"pmlint: no such path: {r}", file=sys.stderr)
            return 2

    sources = collect_sources(roots)
    findings: list[Finding] = []
    for path in sources:
        with open(path, encoding="utf-8", errors="replace") as f:
            check_file(os.path.abspath(path), f.read(), findings)

    if args.engine == "clang":
        compdb = args.compdb or os.path.join(root, "build")
        used = clang_recheck_raw_mutex(sources, compdb, findings)
        if not used:
            print("pmlint: libclang engine unavailable; "
                  "tokenizer results only", file=sys.stderr)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f.render(root))
    n = len(findings)
    print(f"pmlint: {n} finding{'s' if n != 1 else ''} "
          f"in {len(sources)} files")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
