// Fig. 11 reproduction: tar pack/unpack of the (synthetic) Linux source
// tree across all file systems.
//
// Paper shapes: pack — Simurgh fastest despite having no caches; unpack —
// Simurgh ~2x the others (tar issues several attribute syscalls per file,
// which Simurgh replaces with protected calls).
#include <cstdio>

#include "common/table.h"
#include "harness/runner.h"
#include "workloads/tarsim.h"

using namespace simurgh;
using namespace simurgh::bench;

int main() {
  const double scale = bench_scale();
  Table t("Fig 11 — tar throughput [MB/s]");
  t.header({"backend", "pack", "unpack"});
  for (Backend b : all_backends()) {
    sim::SimWorld world;
    auto fs = make_backend(b, world);
    SrcTreeConfig tree;
    tree.scale = 0.02 * scale;
    auto r = run_tar(*fs, tree);
    t.row({backend_name(b), Table::num(r.pack_mb_per_sec),
           Table::num(r.unpack_mb_per_sec)});
  }
  t.print();
  std::puts("paper: Simurgh fastest pack; unpack ~2x every kernel FS");
  return 0;
}
