// Path-resolution microbenchmark for the shared DRAM lookup cache
// (core/lookup_cache.h): real wall-clock time of the real FileSystem, not
// the virtual-clock model.  A/B compares warm depth-8 walks with the cache
// on vs off (the acceptance bar is >= 2x), reports the warm hit rate
// (bar: > 90%), exercises the epoch-conflict path with a concurrent
// renamer, and writes BENCH_pathwalk.json next to the working directory.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_env.h"
#include "core/fs.h"

using namespace simurgh;

namespace {

using Clock = std::chrono::steady_clock;

double ns_per_op(Clock::time_point a, Clock::time_point b, std::uint64_t n) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count() /
         static_cast<double>(n);
}

// Times `iters` stats of every path in `paths` (cache pre-warmed by one
// untimed pass when `warm` is set).
double time_stats(core::Process& p, const std::vector<std::string>& paths,
                  int iters, bool warm) {
  if (warm)
    for (const auto& s : paths) SIMURGH_CHECK(p.stat(s).is_ok());
  const auto t0 = Clock::now();
  std::uint64_t n = 0;
  for (int i = 0; i < iters; ++i)
    for (const auto& s : paths) {
      SIMURGH_CHECK(p.stat(s).is_ok());
      ++n;
    }
  return ns_per_op(t0, Clock::now(), n);
}

}  // namespace

int main() {
  nvmm::Device dev(256ull << 20);
  nvmm::Device shm(16ull << 20);
  auto fs = core::FileSystem::format(dev, shm);
  auto proc = fs->open_process(1000, 1000);
  core::Process& p = *proc;

  // Depth-8 tree: /p1/p2/.../p8 holding 64 files.
  std::string dir;
  for (int d = 1; d <= 8; ++d) {
    dir += "/p" + std::to_string(d);
    SIMURGH_CHECK(p.mkdir(dir).is_ok());
  }
  std::vector<std::string> deep;
  for (int i = 0; i < 64; ++i) {
    deep.push_back(dir + "/f" + std::to_string(i));
    auto fd = p.open(deep.back(), core::kOpenCreate | core::kOpenWrite);
    SIMURGH_CHECK(fd.is_ok());
    SIMURGH_CHECK(p.close(*fd).is_ok());
  }

  // Smoke mode (CI's bench-smoke label) only proves the binary runs.
  const char* smoke_env = std::getenv("SIMURGH_BENCH_SMOKE");
  const bool smoke =
      smoke_env != nullptr && smoke_env[0] != '\0' && smoke_env[0] != '0';
  const int iters = smoke ? 50 : 2000;  // x64 paths = 128k stats per arm
  // Best-of-N, interleaved to defeat drift.  Smoke keeps the full rep count:
  // each rep is well under a millisecond there, and a single sample is noisy
  // enough to flap around the 2x acceptance bar on a loaded CI machine.
  const int reps = 5;

  // --- A/B: warm depth-8 walks, cache off vs on ---
  fs->set_lookup_cache_enabled(true);
  fs->lookup_cache().clear();
  fs->lookup_cache().reset_stats();
  fs->path_cache().clear();
  fs->path_cache().reset_stats();
  const double ns_cold = time_stats(p, deep, 1, /*warm=*/false);
  fs->lookup_cache().reset_stats();
  fs->path_cache().reset_stats();

  // Interleave the arms and keep the best of each: the numbers of interest
  // are the code paths' cost, not whatever else the machine was doing.  The
  // pass/fail ratio is judged per rep — the two arms of one rep run adjacent
  // in time, so background load inflates both and cancels out of the ratio,
  // where a cross-rep min/min can pair a quiet uncached sample with a noisy
  // cached one and flap around the bar on a busy CI machine.  The gate takes
  // the MEDIAN per-rep ratio: the max would cherry-pick the single most
  // favorable rep and let a real cache regression pass on one rep whose
  // uncached arm caught background load.
  double ns_off = 1e300, ns_on = 1e300;
  std::vector<double> ratios;
  for (int r = 0; r < reps; ++r) {
    fs->set_lookup_cache_enabled(false);
    const double off = time_stats(p, deep, iters, /*warm=*/true);
    fs->set_lookup_cache_enabled(true);  // contents survived the A arm
    const double on = time_stats(p, deep, iters, /*warm=*/true);
    ns_off = std::min(ns_off, off);
    ns_on = std::min(ns_on, on);
    ratios.push_back(off / on);
  }
  std::sort(ratios.begin(), ratios.end());
  const double median_ratio = ratios[ratios.size() / 2];
  const double best_ratio = ratios.back();
  // Warm probes land on the whole-path layer first; anything it cannot
  // serve falls through to the per-component cache.  The warm hit rate
  // counts both layers.
  const core::LookupCacheStats wlc = fs->lookup_cache().stats();
  const core::LookupCacheStats wpc = fs->path_cache().stats();
  core::LookupCacheStats warm;
  warm.hits = wlc.hits + wpc.hits;
  warm.misses = wlc.misses + wpc.misses;
  warm.conflicts = wlc.conflicts + wpc.conflicts;
  warm.fills = wlc.fills + wpc.fills;
  const double hit_rate =
      static_cast<double>(warm.hits) /
      static_cast<double>(warm.hits + warm.misses + warm.conflicts);
  const double fp_hit_rate =
      static_cast<double>(wpc.hits) /
      static_cast<double>(wpc.hits + wpc.misses + wpc.conflicts);
  const double speedup = median_ratio;

  // --- churn: stat threads racing a renamer; conflicts must stay safe ---
  fs->lookup_cache().reset_stats();
  fs->path_cache().reset_stats();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> churn_stats{0};
  std::thread renamer([&] {
    auto rp = fs->open_process(1000, 1000);
    const std::string a = dir + "/flip_a", b = dir + "/flip_b";
    auto fd = rp->open(a, core::kOpenCreate | core::kOpenWrite);
    SIMURGH_CHECK(fd.is_ok());
    SIMURGH_CHECK(rp->close(*fd).is_ok());
    while (!stop.load(std::memory_order_relaxed)) {
      SIMURGH_CHECK(rp->rename(a, b).is_ok());
      SIMURGH_CHECK(rp->rename(b, a).is_ok());
    }
  });
  std::vector<std::thread> statters;
  for (int t = 0; t < 4; ++t)
    statters.emplace_back([&] {
      auto sp = fs->open_process(1000, 1000);
      std::uint64_t ok = 0;
      for (int i = 0; i < (smoke ? 500 : 50000); ++i) {
        // Either name may or may not exist at any instant, but a hit must
        // never be stale: a successful stat always carries a live inode.
        for (const char* leaf : {"/flip_a", "/flip_b"}) {
          auto st = sp->stat(dir + leaf);
          if (st.is_ok()) {
            SIMURGH_CHECK(st->inode != 0);
            ++ok;
          }
        }
      }
      churn_stats.fetch_add(ok, std::memory_order_relaxed);
    });
  for (auto& t : statters) t.join();
  stop.store(true);
  renamer.join();
  const core::LookupCacheStats clc = fs->lookup_cache().stats();
  const core::LookupCacheStats cpc = fs->path_cache().stats();
  core::LookupCacheStats churn;
  churn.conflicts = clc.conflicts + cpc.conflicts;

  std::printf("depth-8 warm stat:  uncached %.0f ns/op, cached %.0f ns/op "
              "(cold fill pass %.0f) -> %.2fx median-rep (best %.2fx)\n",
              ns_off, ns_on, ns_cold, speedup, best_ratio);
  std::printf("warm hit rate: %.2f%%  (hits %llu, misses %llu, conflicts "
              "%llu, fills %llu; whole-path layer %.2f%%)\n",
              hit_rate * 100.0, (unsigned long long)warm.hits,
              (unsigned long long)warm.misses,
              (unsigned long long)warm.conflicts,
              (unsigned long long)warm.fills, fp_hit_rate * 100.0);
  std::printf("rename churn: %llu live stats, %llu epoch conflicts, no "
              "stale hit observed\n",
              (unsigned long long)churn_stats.load(),
              (unsigned long long)churn.conflicts);
  std::printf("expectation: >=2x warm speedup, >90%% warm hit rate\n");

  std::FILE* out = std::fopen("BENCH_pathwalk.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    bench_env_fields(out);
    std::fprintf(
        out,
        "  \"bench\": \"path_lookup\",\n"
        "  \"tree\": {\"depth\": 8, \"files\": 64},\n"
        "  \"warm_ns_per_op_uncached\": %.1f,\n"
        "  \"warm_ns_per_op_cached\": %.1f,\n"
        "  \"cold_fill_ns_per_op\": %.1f,\n"
        "  \"speedup_median_rep\": %.2f,\n"
        "  \"speedup_best_rep\": %.2f,\n"
        "  \"speedup_min_over_min\": %.2f,\n"
        "  \"warm_hit_rate\": %.4f,\n"
        "  \"warm_hit_rate_wholepath\": %.4f,\n"
        "  \"warm_hits\": %llu,\n"
        "  \"warm_misses\": %llu,\n"
        "  \"warm_conflicts\": %llu,\n"
        "  \"churn_conflicts\": %llu,\n"
        "  \"pass_speedup_2x\": %s,\n"
        "  \"pass_hit_rate_90\": %s\n"
        "}\n",
        ns_off, ns_on, ns_cold, speedup, best_ratio, ns_off / ns_on, hit_rate,
        fp_hit_rate,
        (unsigned long long)warm.hits, (unsigned long long)warm.misses,
        (unsigned long long)warm.conflicts,
        (unsigned long long)churn.conflicts,
        speedup >= 2.0 ? "true" : "false",
        hit_rate > 0.9 ? "true" : "false");
    std::fclose(out);
  }
  // Smoke mode gates only on correctness (hit rate): sanitizer builds run
  // this label too, and their instrumentation compresses the cached vs
  // uncached gap right onto the 2x bar — the perf acceptance belongs to the
  // full run on an uninstrumented build.
  if (smoke) return hit_rate > 0.9 ? 0 : 1;
  return speedup >= 2.0 && hit_rate > 0.9 ? 0 : 1;
}
