// §3.3 reproduction: the gem5 cycle measurements of the proposed
// instructions, plus host wall-time microbenchmarks of the software
// gateway (google-benchmark).
//
// Paper numbers (gem5, DerivO3CPU):
//   call+ret ≈ 24 cycles; jmpp+pret ≈ 70 cycles (CPL+stack ≈ 30, ep/entry
//   check ≈ 6); empty syscall ≈ 1200 cycles; geteuid() on the real Xeon ≈
//   400 cycles ⇒ jmpp is ~6x cheaper than a syscall, and costs ~46 cycles
//   more than a plain call — the value charged per Simurgh operation.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <unistd.h>

#include "common/table.h"
#include "protsec/bootstrap.h"
#include "protsec/cyclemodel.h"
#include "protsec/gateway.h"

namespace {

using namespace simurgh;
using namespace simurgh::protsec;

void print_cycle_table() {
  const CycleModel& m = kCycleModel;
  Table t("Sec 3.3 — protected-function cycle model (gem5 measurements)");
  t.header({"operation", "cycles", "paper"});
  t.row({"call + ret", std::to_string(m.call), "~24"});
  t.row({"jmpp: CPL change + protected-stack return",
         std::to_string(m.cpl_and_stack), "~30"});
  t.row({"jmpp: ep bit + entry-point check", std::to_string(m.ep_entry_check),
         "~6"});
  t.row({"jmpp + pret total", std::to_string(m.jmpp_pret()), "~70"});
  t.row({"jmpp delta over a call (charged per Simurgh op)",
         std::to_string(m.jmpp_delta()), "46"});
  t.row({"empty syscall (gem5)", std::to_string(m.gem5_syscall), "~1200"});
  t.row({"geteuid (host Xeon)", std::to_string(m.host_syscall), "~400"});
  t.row({"syscall / jmpp ratio (host)",
         Table::num(static_cast<double>(m.host_syscall) / m.jmpp_pret()),
         "~6x"});
  t.print();
}

struct Machine {
  PageTable pt;
  Gateway gw{pt};
  Bootstrap boot{pt, gw};
  ProtectedLibraryHandle handle;

  Machine() {
    boot.whitelist("simurgh");
    auto h = boot.load_protected(
        "simurgh",
        {[](void* a) -> std::uint64_t {
          return a ? *static_cast<std::uint64_t*>(a) + 1 : 1;
        }},
        Credentials{0, 0});
    handle = *h;
  }
};

// Host wall-time of the *software model's* dispatch — shows the emulation
// overhead itself is tiny compared to a real syscall on this host.
void BM_gateway_jmpp(benchmark::State& state) {
  Machine m;
  std::uint64_t arg = 0, out = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.gw.jmpp(m.handle.entry(0), &arg, &out));
  }
  state.counters["modeled_cycles_per_call"] =
      static_cast<double>(kCycleModel.jmpp_pret());
}
BENCHMARK(BM_gateway_jmpp);

void BM_plain_function_call(benchmark::State& state) {
  volatile std::uint64_t x = 0;
  auto fn = [](std::uint64_t v) { return v + 1; };
  for (auto _ : state) {
    x = fn(x);
    benchmark::DoNotOptimize(x);
  }
  state.counters["modeled_cycles_per_call"] =
      static_cast<double>(kCycleModel.call);
}
BENCHMARK(BM_plain_function_call);

void BM_real_syscall_geteuid(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(::geteuid());
  }
  state.counters["modeled_cycles_per_call"] =
      static_cast<double>(kCycleModel.host_syscall);
}
BENCHMARK(BM_real_syscall_geteuid);

// Modeled-cycle benchmark matching the artifact's 100-iteration loop.
void BM_modeled_jmpp_100(benchmark::State& state) {
  Machine m;
  for (auto _ : state) {
    m.gw.reset_cycles();
    std::uint64_t arg = 0;
    for (int i = 0; i < 100; ++i) (void)m.gw.jmpp(m.handle.entry(0), &arg);
    benchmark::DoNotOptimize(m.gw.cycles());
    if (m.gw.cycles() != 100ull * kCycleModel.jmpp_pret())
      state.SkipWithError("cycle accounting mismatch");
  }
}
BENCHMARK(BM_modeled_jmpp_100);

}  // namespace

int main(int argc, char** argv) {
  print_cycle_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
