// Fig. 6 reproduction: FxMark DRBL (private-file random read) as reported
// by the *original* FxMark (repeatedly reading the same blocks → served
// from the CPU cache, throughput far above the device) versus the paper's
// *adapted* FxMark (pseudo-random block choice → bound by NVMM bandwidth),
// for Simurgh and NOVA, with the measured max-NVMM-bandwidth line.
#include <cstdio>

#include "baselines/costs.h"
#include "harness/runner.h"

using namespace simurgh;
using namespace simurgh::bench;

int main() {
  const auto threads = sweep_threads();
  FxConfig cfg;
  cfg.ops_per_thread = static_cast<std::uint64_t>(2000 * bench_scale());
  cfg.file_bytes = 16 << 20;

  const std::vector<Backend> two = {Backend::simurgh, Backend::nova};

  cfg.cached_reads = true;
  auto original = sweep_fxmark(FxOp::read_private, cfg, two, threads);
  for (auto& s : original) s.backend += " (original FxMark)";

  cfg.cached_reads = false;
  auto adapted = sweep_fxmark(FxOp::read_private, cfg, two, threads);
  for (auto& s : adapted) s.backend += " (adapted FxMark)";

  std::vector<SweepSeries> series = std::move(original);
  for (auto& s : adapted) series.push_back(std::move(s));

  // The device line: max NVMM read bandwidth expressed in 4 KB ops/s.
  SweepSeries bw_line;
  bw_line.backend = "max NVMM bandwidth";
  const double ops_cap =
      kCosts.nvmm_read_bpc * sim::kClockHz / 4096.0;  // bytes/s over 4 KB
  for (int n : threads) bw_line.points.push_back({n, ops_cap});
  series.push_back(std::move(bw_line));

  sweep_table(
      "Fig 6 — DRBL read: original (cache-hit) vs adapted (NVMM-bound) "
      "[4KB reads/s; paper: original exceeds the device line, adapted is "
      "bounded by it]",
      series, threads)
      .print();
  return 0;
}
