// Service-mode data-path overhead: the DESIGN.md §13 acceptance gate.
//
// Service mode arbitrates namespace/allocation mutations through the owner
// mount, but 4 KB reads and writes keep the direct NVMM path — so their
// latency from a CLIENT mount must stay within 1.15x of plain decentralized
// mode.  Two arms over identical worlds:
//
//   direct    one mount, no service mode — the paper's baseline data path.
//   service   two mounts, the first owns the arbiter seat, and the CLIENT
//             (second mount) runs the same 4 KB loops.
//
// Each arm preallocates the file (so the measured loops are pure overwrite/
// read with no carve traffic), then times ops/rep overwrites and reads;
// the gating statistic is the median across reps.  The client's FsStat
// svc_requests delta across the measured loops is reported as proof the
// data path generated no per-op ring traffic.
//
// Run FROM THE REPO ROOT; writes BENCH_service.json to the cwd.
// SIMURGH_BENCH_SMOKE=1 shrinks the loops and skips the gate (CI liveness
// only); the full run exits non-zero when a ratio exceeds 1.15.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench_env.h"
#include "core/fs.h"

using namespace simurgh;

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kBlock = 4096;

bool smoke_mode() {
  const char* s = std::getenv("SIMURGH_BENCH_SMOKE");
  return s != nullptr && std::string_view(s) != "0";
}

double ns_per_op(Clock::time_point a, Clock::time_point b, std::uint64_t n) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count() /
         static_cast<double>(n);
}

// Median across reps — same gating statistic as every other BENCH_*.json (a
// best-of-reps min rewards one lucky scheduling window).
double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct World {
  std::unique_ptr<nvmm::Device> dev, shm;
  std::unique_ptr<core::FileSystem> fs_owner;   // also the only fs in direct
  std::unique_ptr<core::FileSystem> fs_client;  // null in the direct arm
  std::unique_ptr<core::Process> proc;          // runs the measured loops

  explicit World(bool service) {
    dev = std::make_unique<nvmm::Device>(768ull << 20);
    shm = std::make_unique<nvmm::Device>(16ull << 20);
    fs_owner = core::FileSystem::format(*dev, *shm);
    if (service) {
      if (!fs_owner->enable_service_mode().is_ok()) std::abort();
      fs_client = core::FileSystem::mount(*dev, *shm);
      if (!fs_client->enable_service_mode().is_ok()) std::abort();
      proc = fs_client->open_process(1000, 1000);
    } else {
      proc = fs_owner->open_process(1000, 1000);
    }
  }
  core::FileSystem& measured_fs() {
    return fs_client ? *fs_client : *fs_owner;
  }
};

struct ArmResult {
  double write_ns = 0;
  double read_ns = 0;
  std::uint64_t svc_requests_during_io = 0;
};

// One world, `reps` reps of ops-sized 4 KB overwrite + read loops.
ArmResult run_arm(bool service, std::uint64_t ops, int reps,
                  std::uint64_t file_blocks) {
  World w(service);
  core::Process& p = *w.proc;
  auto fd = p.open("/bench", core::kOpenCreate | core::kOpenRead |
                                 core::kOpenWrite);
  if (!fd.is_ok()) std::abort();
  std::vector<char> block(kBlock, 'b');
  // Preallocate: every measured op lands on an existing extent, so the
  // loops carry no allocation (and in the service arm, no carve) traffic.
  for (std::uint64_t b = 0; b < file_blocks; ++b)
    if (!p.pwrite(*fd, block.data(), kBlock, b * kBlock).is_ok())
      std::abort();

  const std::uint64_t req_before = w.measured_fs().fsstat().svc_requests;
  std::vector<double> wns, rns;
  std::uint64_t x = 88172645463325252ull;  // xorshift block picker
  for (int r = 0; r < reps; ++r) {
    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
      x ^= x << 13; x ^= x >> 7; x ^= x << 17;
      const std::uint64_t b = x % file_blocks;
      if (!p.pwrite(*fd, block.data(), kBlock, b * kBlock).is_ok())
        std::abort();
    }
    auto t1 = Clock::now();
    wns.push_back(ns_per_op(t0, t1, ops));

    t0 = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
      x ^= x << 13; x ^= x >> 7; x ^= x << 17;
      const std::uint64_t b = x % file_blocks;
      if (!p.pread(*fd, block.data(), kBlock, b * kBlock).is_ok())
        std::abort();
    }
    t1 = Clock::now();
    rns.push_back(ns_per_op(t0, t1, ops));
  }
  ArmResult res;
  res.write_ns = median(wns);
  res.read_ns = median(rns);
  res.svc_requests_during_io =
      w.measured_fs().fsstat().svc_requests - req_before;
  return res;
}

}  // namespace

int main() {
  const bool smoke = smoke_mode();
  const std::uint64_t ops = smoke ? 64 : 20'000;
  const int reps = smoke ? 2 : 5;
  const std::uint64_t file_blocks = smoke ? 16 : 1024;  // 64 KB / 4 MB file

  const ArmResult direct = run_arm(/*service=*/false, ops, reps, file_blocks);
  const ArmResult service = run_arm(/*service=*/true, ops, reps, file_blocks);

  const double wr_ratio = service.write_ns / direct.write_ns;
  const double rd_ratio = service.read_ns / direct.read_ns;
  const bool pass = wr_ratio <= 1.15 && rd_ratio <= 1.15;

  std::printf("4K overwrite: direct %.0f ns/op, service-client %.0f ns/op "
              "(ratio %.3f)\n",
              direct.write_ns, service.write_ns, wr_ratio);
  std::printf("4K read:      direct %.0f ns/op, service-client %.0f ns/op "
              "(ratio %.3f)\n",
              direct.read_ns, service.read_ns, rd_ratio);
  std::printf("client ring requests during measured IO: %llu\n",
              (unsigned long long)service.svc_requests_during_io);
  std::printf("bar (both ratios <= 1.15): %s\n", pass ? "PASS" : "FAIL");

  std::FILE* out = std::fopen("BENCH_service.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    bench_env_fields(out);
    std::fprintf(out,
                 "  \"bench\": \"service\",\n"
                 "  \"workload\": \"random 4 KB overwrite + read on a "
                 "preallocated file; direct mount vs service-mode client\",\n"
                 "  \"block_bytes\": %zu,\n"
                 "  \"ops_per_rep\": %llu,\n"
                 "  \"reps\": %d,\n"
                 "  \"direct_write_ns_per_op\": %.1f,\n"
                 "  \"direct_read_ns_per_op\": %.1f,\n"
                 "  \"service_write_ns_per_op\": %.1f,\n"
                 "  \"service_read_ns_per_op\": %.1f,\n"
                 "  \"write_ratio_median_rep\": %.3f,\n"
                 "  \"read_ratio_median_rep\": %.3f,\n"
                 "  \"client_ring_requests_during_io\": %llu,\n"
                 "  \"pass_ratio_1_15\": %s,\n"
                 "  \"smoke\": %s\n}\n",
                 kBlock, (unsigned long long)ops, reps, direct.write_ns,
                 direct.read_ns, service.write_ns, service.read_ns, wr_ratio,
                 rd_ratio,
                 (unsigned long long)service.svc_requests_during_io,
                 pass ? "true" : "false", smoke ? "true" : "false");
    std::fclose(out);
  }
  if (smoke) return 0;
  return pass ? 0 : 1;
}
