// Table 1 reproduction: breakdown of execution time for NOVA across the
// three applications (YCSB LoadA, tar pack, git commit) into application /
// data copy / file system, using the harness's virtual-time attribution.
//
// Paper:   App         Application  Data Copy  File System
//          YCSB LoadA  27.02%       18.18%     54.62%
//          Tar Pack     8.29%       35.82%     55.89%
//          Git Commit  32.81%        0.45%     66.29%
#include <cstdio>

#include "common/table.h"
#include "harness/runner.h"
#include "workloads/gitsim.h"
#include "workloads/tarsim.h"
#include "workloads/ycsb.h"

using namespace simurgh;
using namespace simurgh::bench;

namespace {
std::string pct(double f) { return Table::num(f * 100.0) + "%"; }
}  // namespace

int main() {
  const double scale = bench_scale();
  Table t("Table 1 — NOVA execution-time breakdown");
  t.header({"App", "Application", "Data Copy", "File System",
            "paper (app/copy/fs)"});

  {
    sim::SimWorld world;
    auto fs = make_backend(Backend::nova, world);
    YcsbConfig cfg;
    cfg.record_count = static_cast<std::uint64_t>(6000 * scale);
    auto r = run_ycsb(*fs, YcsbWorkload::load_a, cfg);
    t.row({"YCSB LoadA", pct(r.frac_app), pct(r.frac_copy), pct(r.frac_fs),
           "27.0 / 18.2 / 54.6"});
  }
  {
    sim::SimWorld world;
    auto fs = make_backend(Backend::nova, world);
    SrcTreeConfig tree;
    tree.scale = 0.02 * scale;
    auto r = run_tar(*fs, tree);
    t.row({"Tar Pack", pct(r.frac_app), pct(r.frac_copy), pct(r.frac_fs),
           "8.3 / 35.8 / 55.9"});
  }
  {
    sim::SimWorld world;
    auto fs = make_backend(Backend::nova, world);
    SrcTreeConfig tree;
    tree.scale = 0.01 * scale;
    auto r = run_git(*fs, tree);
    t.row({"Git Commit", pct(r.frac_app), pct(r.frac_copy), pct(r.frac_fs),
           "32.8 / 0.5 / 66.3"});
  }
  t.print();
  return 0;
}
