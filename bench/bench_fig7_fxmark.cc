// Fig. 7 reproduction: the twelve FxMark panels, each a (backend x thread)
// sweep printing ops/sec.  Pass panel letters (a-l) to run a subset:
//   ./bench_fig7_fxmark b d     # only 7b and 7d
// SIMURGH_BENCH_SCALE scales ops per thread (default 1.0).
#include <cstdio>
#include <map>
#include <string>

#include "harness/runner.h"

using namespace simurgh;
using namespace simurgh::bench;

namespace {

struct Panel {
  char letter;
  FxOp op;
  const char* paper_note;
};

const Panel kPanels[] = {
    {'a', FxOp::create_private, "Simurgh 3.4x NOVA @1T, 2.2x @10T"},
    {'b', FxOp::create_shared, "only Simurgh scales; >17x NOVA @10T"},
    {'c', FxOp::delete_private, "Simurgh delete faster than create"},
    {'d', FxOp::rename_shared, "2.2x EXT4 @1T -> 18.8x @10T"},
    {'e', FxOp::resolve_private, "kernel FSs equal; Simurgh above; SplitFS below"},
    {'f', FxOp::resolve_shared, "others plateau (dentry contention); Simurgh scales"},
    {'g', FxOp::append_private, "SplitFS wins low T; PMFS flat >4T; Simurgh scales"},
    {'h', FxOp::fallocate_private, "PMFS best base, no scaling; EXT4 flat"},
    {'i', FxOp::read_shared, "Simurgh saturates NVMM BW; others collapse"},
    {'j', FxOp::read_private, "everyone scales; Simurgh leads"},
    {'k', FxOp::write_shared, "Simurgh leads; relaxed variant scales"},
    {'l', FxOp::write_private, "Simurgh fastest; SplitFS absent"},
};

FxConfig config_for(FxOp op) {
  FxConfig cfg;
  const double scale = bench_scale();
  cfg.ops_per_thread = static_cast<std::uint64_t>(1500 * scale);
  switch (op) {
    case FxOp::read_shared:
    case FxOp::read_private:
    case FxOp::write_shared:
    case FxOp::write_private:
      cfg.file_bytes = 16 << 20;
      cfg.ops_per_thread = static_cast<std::uint64_t>(2000 * scale);
      break;
    case FxOp::fallocate_private:
      // Scaled from the paper's 1000 x 4 MB to fit the emulated device.
      cfg.falloc_chunk = 1 << 20;
      cfg.ops_per_thread = static_cast<std::uint64_t>(150 * scale);
      break;
    case FxOp::append_private:
      cfg.ops_per_thread = static_cast<std::uint64_t>(1500 * scale);
      break;
    default:
      break;
  }
  return cfg;
}

std::vector<Backend> backends_for(FxOp op) {
  auto list = all_backends();
  if (op == FxOp::write_shared) list.push_back(Backend::simurgh_relaxed);
  if (op == FxOp::write_private) {
    // §5.2: "We were unable to run SplitFS for this benchmark."
    std::erase(list, Backend::splitfs);
  }
  return list;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<char, bool> want;
  for (int i = 1; i < argc; ++i)
    for (const char* c = argv[i]; *c; ++c) want[*c] = true;

  const auto threads = sweep_threads();
  for (const Panel& panel : kPanels) {
    if (!want.empty() && !want.count(panel.letter)) continue;
    const FxConfig cfg = config_for(panel.op);
    auto series = sweep_fxmark(panel.op, cfg, backends_for(panel.op), threads);
    const std::string title = std::string("Fig 7") + panel.letter + " — " +
                              fx_name(panel.op) + "  [ops/s; paper: " +
                              panel.paper_note + "]";
    sweep_table(title, series, threads).print();
  }
  return 0;
}
