// Ablations of Simurgh's three headline design choices (DESIGN.md §2):
//
//  A. Directory lock granularity — the paper's per-hash-line busy flags
//     (48 lines/dir) vs coarser locking down to one lock per directory
//     (the VFS-style strawman).  Workload: shared-directory creates (7b).
//  B. Entry mechanism — jmpp (+46 cycles/call) vs a syscall-style entry
//     (+700) vs free calls.  Workload: resolvepath, where §5.2 claims the
//     saved syscall cycles halve the operation's latency.
//  C. Allocator segmentation — 2x-cores segments vs a serial allocator.
//     Workload: private-file appends (7g), where PMFS's serial allocator
//     flatlines.
//  D. Path-resolution cache — the epoch-validated DRAM lookup cache
//     (lookup_cache.h, this repo's extension beyond the paper) vs the
//     paper's raw hash-block walk.  Workload: resolvepath, all warm.
#include <cstdio>

#include "baselines/simurgh_backend.h"
#include "harness/runner.h"

using namespace simurgh;
using namespace simurgh::bench;

namespace {

double run_with(const SimurghModelOptions& opts, FxOp op, int threads,
                std::uint64_t ops) {
  sim::SimWorld world;
  SimurghBackend fs(world, opts);
  FxConfig cfg;
  cfg.threads = threads;
  cfg.ops_per_thread = ops;
  return run_fxmark(fs, op, cfg);
}

}  // namespace

int main() {
  const auto threads = sweep_threads();
  const auto ops =
      static_cast<std::uint64_t>(1000 * bench_scale());

  {
    Table t("Ablation A — directory lock granularity, shared-dir creates "
            "[ops/s; paper design = 48 lines]");
    std::vector<std::string> header{"lock granularity"};
    for (int n : threads) header.push_back(std::to_string(n) + "T");
    t.header(std::move(header));
    for (unsigned lines : {1u, 4u, 16u, 48u}) {
      SimurghModelOptions o;
      o.lock_lines = lines;
      std::vector<std::string> row{lines == 1
                                       ? "1 (per-directory lock)"
                                       : std::to_string(lines) + " lines"};
      for (int n : threads)
        row.push_back(Table::num(run_with(o, FxOp::create_shared, n, ops)));
      t.row(std::move(row));
    }
    t.print();
  }

  {
    Table t("Ablation B — entry mechanism, resolvepath "
            "[ops/s; paper design = jmpp]");
    std::vector<std::string> header{"entry cost/call"};
    for (int n : threads) header.push_back(std::to_string(n) + "T");
    t.header(std::move(header));
    struct Variant {
      const char* name;
      std::uint32_t cycles;
    };
    for (const Variant v : {Variant{"plain call (0)", 0},
                            Variant{"jmpp (+46)", kCosts.jmpp_delta},
                            Variant{"syscall (+700)",
                                    kCosts.syscall + kCosts.vfs_dispatch}}) {
      SimurghModelOptions o;
      o.entry_cycles = v.cycles;
      std::vector<std::string> row{v.name};
      for (int n : threads)
        row.push_back(
            Table::num(run_with(o, FxOp::resolve_private, n, ops)));
      t.row(std::move(row));
    }
    t.print();
    std::puts(
        "paper (Sec 5.2): on fast ops like resolvepath, removing the "
        "syscall cuts latency by about half; jmpp costs almost nothing");
  }

  {
    Table t("Ablation C — allocator segments, private fallocate "
            "[ops/s; paper design = 2 x cores = 20]");
    std::vector<std::string> header{"segments"};
    for (int n : threads) header.push_back(std::to_string(n) + "T");
    t.header(std::move(header));
    for (unsigned segs : {1u, 2u, 20u}) {
      SimurghModelOptions o;
      o.alloc_segments = segs;
      std::vector<std::string> row{segs == 1 ? "1 (serial, PMFS-style)"
                                             : std::to_string(segs)};
      for (int n : threads)
        row.push_back(
            Table::num(run_with(o, FxOp::fallocate_private, n,
                                std::max<std::uint64_t>(50, ops / 8))));
      t.row(std::move(row));
    }
    t.print();
  }

  {
    Table t("Ablation D — path-resolution cache, resolvepath "
            "[ops/s; paper design = off, raw hash-block walks]");
    std::vector<std::string> header{"lookup cache"};
    for (int n : threads) header.push_back(std::to_string(n) + "T");
    t.header(std::move(header));
    for (const bool on : {false, true}) {
      SimurghModelOptions o;
      o.path_cache = on;
      std::vector<std::string> row{on ? "epoch-validated DRAM cache"
                                      : "off (paper design)"};
      for (int n : threads)
        row.push_back(
            Table::num(run_with(o, FxOp::resolve_private, n, ops)));
      t.row(std::move(row));
    }
    t.print();
    std::puts(
        "expectation: warm resolves skip the per-component NVMM probes, so "
        "the cached row clears the paper-design row at every thread count");
  }
  return 0;
}
