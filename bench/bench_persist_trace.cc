// Guard bench for the persist hot path: store tracing (nvmm/shadow.h) must
// cost nothing when disarmed.  The tracer hook is a relaxed atomic load of
// a pointer that is null in production, so persist()/fence() with tracing
// off must match the pre-tracer baseline (~11-12 ns for a 64B persist +
// fence every 8 ops on the dev box); the traced variant shows the price the
// crash harness pays, which only test code ever sees.
//
//   ./bench_persist_trace
//
// Compare `persist_fence/off` against `persist_fence/on`.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "nvmm/device.h"
#include "nvmm/persist.h"
#include "nvmm/shadow.h"

namespace {

constexpr std::size_t kDevBytes = 1 << 20;
constexpr int kFenceEvery = 8;

void persist_fence_loop(benchmark::State& state, bool traced) {
  simurgh::nvmm::Device dev(kDevBytes);
  std::unique_ptr<simurgh::nvmm::ShadowLog> log;
  if (traced) {
    log = std::make_unique<simurgh::nvmm::ShadowLog>(dev);
    log->start();
  }
  auto* p = reinterpret_cast<std::uint64_t*>(dev.base());
  std::uint64_t i = 0;
  int pending = 0;
  for (auto _ : state) {
    std::uint64_t* line = p + (i % (kDevBytes / 64)) * 8;
    *line = i;
    simurgh::nvmm::persist(line, 64);
    if (++pending == kFenceEvery) {
      simurgh::nvmm::fence();
      pending = 0;
    }
    ++i;
  }
  if (log) log->stop();
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}

void BM_persist_fence_off(benchmark::State& state) {
  persist_fence_loop(state, false);
}
void BM_persist_fence_on(benchmark::State& state) {
  persist_fence_loop(state, true);
}

BENCHMARK(BM_persist_fence_off)->Name("persist_fence/off");
BENCHMARK(BM_persist_fence_on)->Name("persist_fence/on");

}  // namespace

BENCHMARK_MAIN();
