// Multi-mount scaling microbenchmark: aggregate ops/s of a mixed
// metadata+data workload with 1, 2 and 4 FileSystem instances attached to
// one nvmm+shm device pair (the paper's N coordinator-free processes, §4).
// Every mount runs one driver thread in its own directory, so the numbers
// isolate the cost of the *shared* coordination state — mount registry
// heartbeats, shm block reservations, the shared free-object stacks and the
// superblock cache-generation poll.  Writes BENCH_multimount.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/fs.h"

using namespace simurgh;

namespace {

using Clock = std::chrono::steady_clock;

// One driver: create+write+stat+unlink churn under `dir`.  Returns the
// number of file-system operations performed.
std::uint64_t drive(core::FileSystem& fs, const std::string& dir, int iters) {
  auto p = fs.open_process(1000, 1000);
  SIMURGH_CHECK(p->mkdir(dir).is_ok());
  char buf[4096];
  std::memset(buf, 'm', sizeof buf);
  std::uint64_t ops = 1;
  for (int i = 0; i < iters; ++i) {
    const std::string f = dir + "/f" + std::to_string(i % 64);
    auto fd = p->open(f, core::kOpenCreate | core::kOpenWrite);
    SIMURGH_CHECK(fd.is_ok());
    SIMURGH_CHECK(p->write(*fd, buf, sizeof buf).is_ok());
    SIMURGH_CHECK(p->close(*fd).is_ok());
    SIMURGH_CHECK(p->stat(f).is_ok());
    ops += 4;
    if (i % 4 == 3) {
      SIMURGH_CHECK(p->unlink(f).is_ok());
      ++ops;
    }
  }
  return ops;
}

struct Point {
  unsigned mounts;
  double ops_per_sec;
};

Point run_scale(unsigned n_mounts, int iters) {
  nvmm::Device dev(512ull << 20);
  nvmm::Device shm(16ull << 20);
  std::vector<std::unique_ptr<core::FileSystem>> mounts;
  mounts.push_back(core::FileSystem::format(dev, shm));
  for (unsigned m = 1; m < n_mounts; ++m)
    mounts.push_back(core::FileSystem::mount(dev, shm));

  std::vector<std::uint64_t> ops(n_mounts, 0);
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  for (unsigned m = 0; m < n_mounts; ++m)
    threads.emplace_back([&, m] {
      ops[m] = drive(*mounts[m], "/m" + std::to_string(m), iters);
    });
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() -
                                                                t0)
          .count();
  std::uint64_t total = 0;
  for (std::uint64_t o : ops) total += o;
  for (auto& fs : mounts) fs->unmount();
  return {n_mounts, static_cast<double>(total) / secs};
}

}  // namespace

int main() {
  const char* smoke_env = std::getenv("SIMURGH_BENCH_SMOKE");
  const bool smoke =
      smoke_env != nullptr && smoke_env[0] != '\0' && smoke_env[0] != '0';
  const int iters = smoke ? 200 : 40000;

  std::vector<Point> points;
  for (unsigned n : {1u, 2u, 4u}) points.push_back(run_scale(n, iters));

  for (const Point& pt : points)
    std::printf("%u mount%s: %.0f ops/s aggregate (%.0f per mount)\n",
                pt.mounts, pt.mounts == 1 ? " " : "s", pt.ops_per_sec,
                pt.ops_per_sec / pt.mounts);
  const double scaling = points.back().ops_per_sec / points.front().ops_per_sec;
  std::printf("1 -> 4 mount aggregate scaling: %.2fx\n", scaling);

  std::FILE* out = std::fopen("BENCH_multimount.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"multimount\",\n"
                 "  \"workload\": \"create+write4k+stat+unlink churn, one "
                 "thread per mount\",\n"
                 "  \"iters_per_mount\": %d,\n"
                 "  \"points\": [\n",
                 iters);
    for (std::size_t i = 0; i < points.size(); ++i)
      std::fprintf(out,
                   "    {\"mounts\": %u, \"ops_per_sec\": %.0f}%s\n",
                   points[i].mounts, points[i].ops_per_sec,
                   i + 1 < points.size() ? "," : "");
    std::fprintf(out,
                 "  ],\n"
                 "  \"aggregate_scaling_1_to_4\": %.3f\n"
                 "}\n",
                 scaling);
    std::fclose(out);
  }
  return 0;
}
