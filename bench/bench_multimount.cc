// Multi-mount scaling microbenchmark: aggregate ops/s of a mixed
// metadata+data workload with 1, 2, 4, 8 and 16 FileSystem instances
// attached to one nvmm+shm device pair (the paper's N coordinator-free
// processes, §4).  Every mount runs one driver thread in its own
// directory, so the numbers isolate the cost of the *shared* coordination
// state — mount registry heartbeats, the striped shm block reservations,
// the striped free-object stacks and the per-shard cache-generation poll.
//
// Like bench_path_lookup, every mount count runs `reps` interleaved
// repetitions and the scaling gate judges the MEDIAN per-rep ratio: the
// arms of one rep run adjacent in time, so background load inflates all
// of them and mostly cancels out of the ratio, while a best-rep pick
// would cherry-pick the one quiet sample.  Reported throughput per point
// is the median rep too.
//
// The hardware-parallelism ceiling is min(n_mounts, n_cpus): on a 1-CPU
// host every mount count time-slices one core and the ideal aggregate
// scaling is 1.0x, so the gate asks only that added mounts do not
// COLLAPSE aggregate throughput (coordination overhead, not parallel
// speedup — the latter needs cores).  The JSON records n_cpus so readers
// can judge the points against the right ceiling.  Writes
// BENCH_multimount.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_env.h"
#include "core/fs.h"

using namespace simurgh;

namespace {

using Clock = std::chrono::steady_clock;

// One driver: create+write+stat+unlink churn under `dir`.  Returns the
// number of file-system operations performed.
std::uint64_t drive(core::FileSystem& fs, const std::string& dir, int iters) {
  auto p = fs.open_process(1000, 1000);
  SIMURGH_CHECK(p->mkdir(dir).is_ok());
  char buf[4096];
  std::memset(buf, 'm', sizeof buf);
  std::uint64_t ops = 1;
  for (int i = 0; i < iters; ++i) {
    const std::string f = dir + "/f" + std::to_string(i % 64);
    auto fd = p->open(f, core::kOpenCreate | core::kOpenWrite);
    SIMURGH_CHECK(fd.is_ok());
    SIMURGH_CHECK(p->write(*fd, buf, sizeof buf).is_ok());
    SIMURGH_CHECK(p->close(*fd).is_ok());
    SIMURGH_CHECK(p->stat(f).is_ok());
    ops += 4;
    if (i % 4 == 3) {
      SIMURGH_CHECK(p->unlink(f).is_ok());
      ++ops;
    }
  }
  return ops;
}

// Shared-state contention telemetry summed over every mount of one run
// (see FsStat in core/fs.h — all four should stay near zero when the
// sharding does its job).
struct Contention {
  std::uint64_t obj_cas_retries = 0;
  std::uint64_t obj_stripe_steals = 0;
  std::uint64_t reserve_slot_probes = 0;
  std::uint64_t shard_invalidations = 0;
};

struct Sample {
  double ops_per_sec = 0.0;
  Contention contention;
};

Sample run_scale(unsigned n_mounts, int iters) {
  nvmm::Device dev(512ull << 20);
  nvmm::Device shm(16ull << 20);
  std::vector<std::unique_ptr<core::FileSystem>> mounts;
  mounts.push_back(core::FileSystem::format(dev, shm));
  for (unsigned m = 1; m < n_mounts; ++m)
    mounts.push_back(core::FileSystem::mount(dev, shm));

  std::vector<std::uint64_t> ops(n_mounts, 0);
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  for (unsigned m = 0; m < n_mounts; ++m)
    threads.emplace_back([&, m] {
      ops[m] = drive(*mounts[m], "/m" + std::to_string(m), iters);
    });
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() -
                                                                t0)
          .count();

  Sample s;
  std::uint64_t total = 0;
  for (std::uint64_t o : ops) total += o;
  s.ops_per_sec = static_cast<double>(total) / secs;
  for (auto& fs : mounts) {
    const core::FsStat st = fs->fsstat();
    s.contention.obj_cas_retries += st.obj_cas_retries;
    s.contention.obj_stripe_steals += st.obj_stripe_steals;
    s.contention.reserve_slot_probes += st.reserve_slot_probes;
    s.contention.shard_invalidations += st.shard_invalidations;
    fs->unmount();
  }
  return s;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct Point {
  unsigned mounts;
  double ops_per_sec;      // median rep
  double best_ops_per_sec;  // best rep, for context only
  Contention contention;    // from the median rep
};

}  // namespace

int main() {
  const char* smoke_env = std::getenv("SIMURGH_BENCH_SMOKE");
  const bool smoke =
      smoke_env != nullptr && smoke_env[0] != '\0' && smoke_env[0] != '0';
  const int iters = smoke ? 50 : 20000;
  const int reps = smoke ? 1 : 5;
  const std::vector<unsigned> mount_counts = {1u, 2u, 4u, 8u, 16u};
  const unsigned n_cpus = std::max(1u, std::thread::hardware_concurrency());

  // samples[point][rep]
  std::vector<std::vector<Sample>> samples(mount_counts.size());
  for (int r = 0; r < reps; ++r)
    for (std::size_t i = 0; i < mount_counts.size(); ++i)
      samples[i].push_back(run_scale(mount_counts[i], iters));

  std::vector<Point> points;
  for (std::size_t i = 0; i < mount_counts.size(); ++i) {
    std::vector<double> rates;
    for (const Sample& s : samples[i]) rates.push_back(s.ops_per_sec);
    const double med = median(rates);
    Point pt{mount_counts[i], med, *std::max_element(rates.begin(),
                                                     rates.end()), {}};
    // Telemetry from the rep whose rate is the median (ties: first).
    for (const Sample& s : samples[i])
      if (s.ops_per_sec == med) { pt.contention = s.contention; break; }
    points.push_back(pt);
  }

  // Per-rep 1->4 ratio; both arms of a rep ran adjacent in time.
  std::vector<double> ratios_1_to_4;
  for (int r = 0; r < reps; ++r)
    ratios_1_to_4.push_back(samples[2][r].ops_per_sec /
                            samples[0][r].ops_per_sec);
  const double scaling_1_to_4 = median(ratios_1_to_4);
  const double scaling_1_to_16 =
      points.back().ops_per_sec / points.front().ops_per_sec;

  for (const Point& pt : points)
    std::printf("%2u mount%s: %8.0f ops/s aggregate median (best %8.0f, "
                "%7.0f per mount; cas_retries %llu steals %llu probes %llu "
                "invals %llu)\n",
                pt.mounts, pt.mounts == 1 ? " " : "s", pt.ops_per_sec,
                pt.best_ops_per_sec, pt.ops_per_sec / pt.mounts,
                (unsigned long long)pt.contention.obj_cas_retries,
                (unsigned long long)pt.contention.obj_stripe_steals,
                (unsigned long long)pt.contention.reserve_slot_probes,
                (unsigned long long)pt.contention.shard_invalidations);
  std::printf("1 -> 4 mount aggregate scaling: %.2fx median-rep "
              "(1 -> 16: %.2fx) on %u cpu%s — parallel ceiling is "
              "min(mounts, cpus)\n",
              scaling_1_to_4, scaling_1_to_16, n_cpus,
              n_cpus == 1 ? "" : "s");

  std::FILE* out = std::fopen("BENCH_multimount.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    bench_env_fields(out);
    std::fprintf(out,
                 "  \"bench\": \"multimount\",\n"
                 "  \"workload\": \"create+write4k+stat+unlink churn, one "
                 "thread per mount\",\n"
                 "  \"iters_per_mount\": %d,\n"
                 "  \"reps\": %d,\n"
                 "  \"n_cpus\": %u,\n"
                 "  \"points\": [\n",
                 iters, reps, n_cpus);
    for (std::size_t i = 0; i < points.size(); ++i)
      std::fprintf(out,
                   "    {\"mounts\": %u, \"ops_per_sec\": %.0f, "
                   "\"best_ops_per_sec\": %.0f, \"obj_cas_retries\": %llu, "
                   "\"obj_stripe_steals\": %llu, \"reserve_slot_probes\": "
                   "%llu, \"shard_invalidations\": %llu}%s\n",
                   points[i].mounts, points[i].ops_per_sec,
                   points[i].best_ops_per_sec,
                   (unsigned long long)points[i].contention.obj_cas_retries,
                   (unsigned long long)points[i].contention.obj_stripe_steals,
                   (unsigned long long)
                       points[i].contention.reserve_slot_probes,
                   (unsigned long long)
                       points[i].contention.shard_invalidations,
                   i + 1 < points.size() ? "," : "");
    std::fprintf(out,
                 "  ],\n"
                 "  \"aggregate_scaling_1_to_4_median_rep\": %.3f,\n"
                 "  \"aggregate_scaling_1_to_16\": %.3f,\n"
                 "  \"scaling_ceiling_note\": \"ideal aggregate scaling is "
                 "min(mounts, n_cpus)/1; on a 1-cpu host all mount counts "
                 "time-slice one core and ~1.0x is the physical "
                 "ceiling\",\n"
                 "  \"pass_no_collapse_1_to_4\": %s\n"
                 "}\n",
                 scaling_1_to_4, scaling_1_to_16,
                 scaling_1_to_4 >= 0.5 ? "true" : "false");
    std::fclose(out);
  }
  // Smoke proves the binary end to end (every op SIMURGH_CHECKed); the
  // perf gate belongs to the full run on an uninstrumented build.  The
  // full-mode bar is no-collapse: with fewer cores than mounts the extra
  // mounts buy no parallelism, so the gate asks the shared coordination
  // state not to eat more than half the single-mount throughput.
  if (smoke) return 0;
  return scaling_1_to_4 >= 0.5 ? 0 : 1;
}
