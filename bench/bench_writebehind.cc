// Write-behind tier benchmark (core/write_behind.h): wall-clock latency and
// throughput of the write+fsync hot loop across the three durability
// classes, at 256 B and 4 KB blocks, 1 and 4 threads, with the group-commit
// interval pinned to the paper-shaped T = 100 µs.
//
//   strict  every op pays nt-copy + fence + size stamp before returning
//   group   ops ack from the DRAM staging tier; fsync is absorbed into the
//           epoch cadence (fsyncs_absorbed per op is reported — it should
//           be ~1.0: every fsync folded into the 100 µs group commit)
//   async   staged writes, but fsync FORCES the epoch — a write+fsync loop
//           is this class's worst case by design: every op pays the full
//           epoch commit protocol (journal arm + stamps + its fences), so
//           it lands at or below strict.  async wins on plain writes with
//           occasional fsync, not on this loop.
//
// The bench enables the nvmm Optane wall-clock timing model (persist.h):
// with the counter-only emulation a fence is free, so strict-vs-staged
// comparisons would measure bookkeeping, not durability cost.  Both classes
// run under the same model — strict pays its fences at modeled media
// latency/bandwidth, the staging tier pays them on the persister thread.
// Set SIMURGH_NVMM_OPTANE=0 to measure the raw emulated-DRAM numbers.
//
// Run FROM THE REPO ROOT; writes BENCH_writebehind.json to the cwd.
// Median-rep gated like the other BENCH files: without SIMURGH_BENCH_SMOKE
// the run exits nonzero unless the 4 KB single-thread group-class
// throughput is >= 3x strict (the tier's headline acceptance bar).
//
// SIMURGH_BENCH_SMOKE=1 shrinks the loops and always exits 0.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_env.h"
#include "core/fs.h"
#include "core/write_behind.h"

using namespace simurgh;

namespace {

using Clock = std::chrono::steady_clock;

bool smoke_mode() {
  const char* s = std::getenv("SIMURGH_BENCH_SMOKE");
  return s != nullptr && std::string_view(s) != "0";
}

double ns_per_op(Clock::time_point a, Clock::time_point b, std::uint64_t n) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count() /
         static_cast<double>(n);
}

// Median across reps — the gating statistic every BENCH_*.json uses.
double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct World {
  std::unique_ptr<nvmm::Device> dev, shm;
  std::unique_ptr<core::FileSystem> fs;
  std::unique_ptr<core::Process> proc;

  World() {
    dev = std::make_unique<nvmm::Device>(768ull << 20);
    shm = std::make_unique<nvmm::Device>(16ull << 20);
    fs = core::FileSystem::format(*dev, *shm);
    proc = fs->open_process(1000, 1000);
    core::WriteBehind* wb = fs->write_behind();
    SIMURGH_CHECK(wb != nullptr);
    // The acceptance configuration: T = 100 µs (the default), with the
    // staging cap lifted above the working set so the numbers measure the
    // tier, not the backpressure fallback (which BENCH-gating would hide).
    wb->set_interval_us(100);
    wb->set_max_staged_bytes(256ull << 20);
    // Pre-fault the staging arena (setup, untimed): first-touch page
    // faults would otherwise dominate the staged hot path whenever the
    // producer bursts ahead of the persister's chunk recycling.
    wb->prewarm_chunks(128ull << 20);
  }
};

struct Sample {
  double ns_per_op = 0;       // aggregate wall / total ops
  double mops = 0;            // throughput, million write+fsync pairs /s
  double absorbed_per_op = 0; // fsyncs_absorbed delta / ops
};

// One rep: `threads` workers, each write+fsync `ops` times into a private
// fresh file of class `cls` (strict files simply never get a class).
Sample run_rep(core::FileSystem& fs, core::Durability cls, int threads,
               std::size_t block_bytes, std::uint64_t ops) {
  std::vector<std::unique_ptr<core::Process>> procs;
  std::vector<int> fds(threads);
  for (int t = 0; t < threads; ++t) {
    procs.push_back(fs.open_process(1000, 1000));
    const std::string path = "/wb" + std::to_string(t);
    auto fd = procs[t]->open(path, core::kOpenCreate | core::kOpenWrite |
                                       core::kOpenAppend);
    SIMURGH_CHECK(fd.is_ok());
    fds[t] = *fd;
    if (cls != core::Durability::strict)
      SIMURGH_CHECK(procs[t]->set_durability(path, cls).is_ok());
  }
  const std::uint64_t absorbed0 = fs.fsstat().fsyncs_absorbed;
  std::vector<char> block(block_bytes, 'w');
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> ts;
  const auto worker = [&](int t) {
    ready.fetch_add(1);
    while (!go.load(std::memory_order_acquire)) {
    }
    for (std::uint64_t i = 0; i < ops; ++i) {
      SIMURGH_CHECK(
          procs[t]->write(fds[t], block.data(), block.size()).is_ok());
      SIMURGH_CHECK(procs[t]->fsync(fds[t]).is_ok());
    }
  };
  for (int t = 0; t < threads; ++t) ts.emplace_back(worker, t);
  while (ready.load() != threads) {
  }
  const auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : ts) th.join();
  const auto t1 = Clock::now();
  const std::uint64_t total = ops * static_cast<std::uint64_t>(threads);
  Sample s;
  s.ns_per_op = ns_per_op(t0, t1, total);
  s.mops = 1000.0 / s.ns_per_op;
  s.absorbed_per_op =
      static_cast<double>(fs.fsstat().fsyncs_absorbed - absorbed0) /
      static_cast<double>(total);
  // Teardown outside the timed window: unlink drains any staged remainder.
  for (int t = 0; t < threads; ++t) {
    SIMURGH_CHECK(procs[t]->close(fds[t]).is_ok());
    SIMURGH_CHECK(procs[t]->unlink("/wb" + std::to_string(t)).is_ok());
  }
  return s;
}

Sample median_sample(std::vector<Sample> reps) {
  std::vector<double> ns;
  for (const Sample& s : reps) ns.push_back(s.ns_per_op);
  const double med = median(ns);
  for (const Sample& s : reps)
    if (s.ns_per_op == med) return s;
  return reps.front();
}

const char* cls_name(core::Durability d) {
  switch (d) {
    case core::Durability::strict: return "strict";
    case core::Durability::group: return "group";
    case core::Durability::async: return "async";
  }
  return "?";
}

// Flat-JSON number scraper (same shape as bench_data_path's).
double json_number(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t k = text.find(needle);
  if (k == std::string::npos) return std::nan("");
  const std::size_t colon = text.find(':', k);
  if (colon == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

}  // namespace

int main() {
  // Before any persist-primitive call: the model config is latched at first
  // use.  setenv with overwrite=0 keeps an explicit user override in force.
  setenv("SIMURGH_NVMM_OPTANE", "1", 0);
  const bool smoke = smoke_mode();
  const std::uint64_t ops = smoke ? 48 : 4096;
  const int reps = smoke ? 1 : 5;
  const std::vector<core::Durability> classes = {
      core::Durability::strict, core::Durability::group,
      core::Durability::async};
  const std::vector<std::size_t> blocks = {256, 4096};
  const std::vector<int> threads = smoke ? std::vector<int>{1}
                                         : std::vector<int>{1, 4};

  // Fresh mount per class x block x thread arm: staging state, extent
  // caches, and allocator reservations start identical for every arm.
  struct Arm {
    core::Durability cls;
    std::size_t block;
    int threads;
    Sample s;
  };
  std::vector<Arm> arms;
  for (core::Durability cls : classes)
    for (std::size_t b : blocks)
      for (int t : threads) {
        World w;
        std::vector<Sample> rs;
        for (int r = 0; r < reps; ++r)
          rs.push_back(run_rep(*w.fs, cls, t, b, ops));
        arms.push_back(Arm{cls, b, t, median_sample(std::move(rs))});
      }

  auto find = [&](core::Durability cls, std::size_t b, int t) -> const Arm& {
    for (const Arm& a : arms)
      if (a.cls == cls && a.block == b && a.threads == t) return a;
    return arms.front();
  };

  for (const Arm& a : arms)
    std::printf("%-6s %4zuB x%d: %8.0f ns/op  %6.2f Mops/s  "
                "(%.2f fsyncs absorbed/op)\n",
                cls_name(a.cls), a.block, a.threads, a.s.ns_per_op, a.s.mops,
                a.s.absorbed_per_op);

  // Acceptance bar: 4 KB write+fsync, 1 thread, group vs strict >= 3x
  // throughput at T = 100 µs.
  const Arm& s1 = find(core::Durability::strict, 4096, 1);
  const Arm& g1 = find(core::Durability::group, 4096, 1);
  const double speedup = s1.s.ns_per_op / g1.s.ns_per_op;
  std::printf("group vs strict (4KB x1): %.2fx  (bar >= 3x: %s)\n", speedup,
              speedup >= 3.0 ? "PASS" : "FAIL");

  // Cross-check against the strict data path's own bench: the strict arm
  // here is append + fsync, so it must sit in the same regime as
  // BENCH_datapath.json's plain append (reported, not gated — the fence
  // per op and separate runs make a hard bar flappy).
  double datapath_append = std::nan("");
  if (std::FILE* f = std::fopen("BENCH_datapath.json", "r")) {
    std::string text;
    char chunk[4096];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0)
      text.append(chunk, got);
    std::fclose(f);
    datapath_append = json_number(text, "append1_ns_per_op");
    if (datapath_append == datapath_append)
      std::printf("strict 4KB x1 vs datapath append: %.0f vs %.0f ns/op "
                  "(%.2fx)\n",
                  s1.s.ns_per_op, datapath_append,
                  s1.s.ns_per_op / datapath_append);
  }

  std::FILE* out = std::fopen("BENCH_writebehind.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    bench_env_fields(out);
    std::fprintf(out,
                 "  \"bench\": \"writebehind\",\n"
                 "  \"optane_model\": true,\n"
                 "  \"interval_us\": 100,\n"
                 "  \"ops_per_thread\": %llu,\n"
                 "  \"reps\": %d,\n",
                 (unsigned long long)ops, reps);
    for (const Arm& a : arms)
      std::fprintf(out,
                   "  \"%s_%zu_t%d_ns_per_op\": %.1f,\n"
                   "  \"%s_%zu_t%d_mops\": %.3f,\n"
                   "  \"%s_%zu_t%d_fsyncs_absorbed_per_op\": %.3f,\n",
                   cls_name(a.cls), a.block, a.threads, a.s.ns_per_op,
                   cls_name(a.cls), a.block, a.threads, a.s.mops,
                   cls_name(a.cls), a.block, a.threads, a.s.absorbed_per_op);
    if (datapath_append == datapath_append)
      std::fprintf(out, "  \"datapath_append1_ns_per_op\": %.1f,\n",
                   datapath_append);
    std::fprintf(out,
                 "  \"group_vs_strict_4k_t1\": %.2f,\n"
                 "  \"pass_group_3x\": %s,\n"
                 "  \"smoke\": %s\n}\n",
                 speedup, speedup >= 3.0 ? "true" : "false",
                 smoke ? "true" : "false");
    std::fclose(out);
  }
  if (smoke) return 0;
  return speedup >= 3.0 ? 0 : 1;
}
