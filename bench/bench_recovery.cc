// §5.5 reproduction: full-system recovery time.
//
// The paper crashes a file system holding 10 Linux source trees (672,940
// files, 88,780 directories) and measures 4.1 s for the mark-and-sweep to
// reach a healthy state.  This bench builds scaled file sets on the *real*
// Simurgh file system, simulates a crash (volatile state dropped, unclean
// superblock), runs recover(), and reports wall time plus a linear
// extrapolation to the paper's scale — the paper itself notes that
// recovery memory/time are linear in the number of files and directories.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/fs.h"
#include "harness/runner.h"

using namespace simurgh;

int main() {
  const double scale = bench::bench_scale();
  Table t("Sec 5.5 — full recovery (mark-and-sweep) on the real FS");
  t.header({"files", "dirs", "recovery seconds", "us per object",
            "extrapolated to paper scale"});

  for (std::uint64_t n_files :
       {static_cast<std::uint64_t>(10000 * scale),
        static_cast<std::uint64_t>(30000 * scale),
        static_cast<std::uint64_t>(60000 * scale)}) {
    nvmm::Device dev(3ull << 30);
    nvmm::Device shm(64ull << 20);
    auto fs = core::FileSystem::format(dev, shm);
    auto proc = fs->open_process(1000, 1000);
    const std::uint64_t n_dirs = std::max<std::uint64_t>(1, n_files / 8);
    std::vector<std::string> dirs;
    dirs.reserve(n_dirs);
    for (std::uint64_t d = 0; d < n_dirs; ++d) {
      const std::string dir = "/d" + std::to_string(d);
      SIMURGH_CHECK(proc->mkdir(dir).is_ok());
      dirs.push_back(dir);
    }
    for (std::uint64_t i = 0; i < n_files; ++i) {
      const std::string f = dirs[i % n_dirs] + "/f" + std::to_string(i);
      auto fd = proc->open(f, core::kOpenCreate | core::kOpenWrite);
      SIMURGH_CHECK(fd.is_ok());
      SIMURGH_CHECK(proc->close(*fd).is_ok());
    }
    proc.reset();
    fs.reset();   // crash: no unmount, volatile state discarded
    shm.wipe();
    fs = core::FileSystem::mount(dev, shm);  // recovery runs inside mount
    const auto report = fs->recover();       // timed steady-state pass
    const double objects =
        static_cast<double>(report.files + report.directories);
    const double us_per_obj = report.seconds * 1e6 / std::max(1.0, objects);
    const double extrapolated = us_per_obj * (672940.0 + 88780.0) / 1e6;
    t.row({std::to_string(report.files), std::to_string(report.directories),
           Table::num(report.seconds), Table::num(us_per_obj),
           Table::num(extrapolated) + " s (paper: 4.1 s)"});
  }
  t.print();
  std::puts(
      "paper: 4.1 s for 672,940 files / 88,780 dirs; runtime (per-line) "
      "recovery is not measurable — see test_fs_crash for that path");
  return 0;
}
