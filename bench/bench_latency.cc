// Per-operation latency distributions (supplementary — the paper reports
// throughput; §3.1/§5.2 argue in latency terms: "the time for trapping
// into the kernel for file system operations like stat and open can be
// more costly than the file system operations themselves", and removing
// the ~330 syscall cycles "can reduce the operation's latency by half").
//
// This bench reports single-client op latencies (median and p99 under a
// 10-thread contended run) for stat / create / unlink / append / read 4K
// across all backends, in nanoseconds of modeled time.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "harness/runner.h"

using namespace simurgh;
using namespace simurgh::bench;

namespace {

struct Dist {
  double p50 = 0, p99 = 0;
};

Dist dist_of(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  Dist d;
  if (v.empty()) return d;
  d.p50 = v[v.size() / 2];
  d.p99 = v[std::min(v.size() - 1, v.size() * 99 / 100)];
  return d;
}

// Runs `ops` of one kind on `threads` logical threads, collecting per-op
// latencies from thread 0 (the observed client).
std::vector<double> latencies(Backend b, const char* kind, int threads,
                              int ops) {
  sim::SimWorld world;
  auto fs = make_backend(b, world);
  sim::SimThread setup(-1);
  SIMURGH_CHECK(fs->mkdir(setup, "/d").is_ok());
  for (int i = 0; i < 256; ++i)
    SIMURGH_CHECK(fs->create(setup, "/d/seed" + std::to_string(i)).is_ok());
  SIMURGH_CHECK(fs->append(setup, "/d/seed0", 1 << 20).is_ok());

  std::vector<double> out;
  std::vector<sim::Executor::ThreadFn> streams;
  for (int t = 0; t < threads; ++t) {
    streams.push_back([&fs, kind, t, ops, &out, n = 0,
                       rng = Rng(t)](sim::SimThread& th) mutable {
      if (n >= ops) return false;
      const sim::Cycles before = th.now();
      const std::string k(kind);
      const std::string mine =
          "/d/t" + std::to_string(t) + "_" + std::to_string(n);
      if (k == "stat")
        (void)fs->resolve(th, "/d/seed" + std::to_string(rng.below(256)));
      else if (k == "create")
        (void)fs->create(th, mine);
      else if (k == "unlink") {
        (void)fs->create(th, mine);
        const sim::Cycles mid = th.now();
        (void)fs->unlink(th, mine);
        if (t == 0) out.push_back(static_cast<double>(th.now() - mid) /
                                  sim::kClockHz * 1e9);
        ++n;
        return true;
      } else if (k == "append")
        (void)fs->append(th, "/d/seed" + std::to_string(t), 4096);
      else if (k == "read4k")
        (void)fs->read(th, "/d/seed0", rng.below(200) * 4096, 4096);
      if (t == 0)
        out.push_back(static_cast<double>(th.now() - before) /
                      sim::kClockHz * 1e9);
      ++n;
      return true;
    });
  }
  std::vector<sim::SimThread> states;
  for (int t = 0; t < threads; ++t) {
    states.emplace_back(t);
    states.back().set_now(setup.now());
  }
  (void)sim::Executor::run(std::move(streams), states, 0);
  return out;
}

}  // namespace

int main() {
  const int ops = static_cast<int>(400 * bench_scale());
  for (const char* kind : {"stat", "create", "unlink", "append", "read4k"}) {
    Table t(std::string("op latency — ") + kind +
            "  [ns modeled; median@1T / median@10T / p99@10T]");
    t.header({"backend", "p50 1T", "p50 10T", "p99 10T"});
    for (Backend b : all_backends()) {
      auto solo = latencies(b, kind, 1, ops);
      auto busy = latencies(b, kind, 10, ops);
      const Dist d1 = dist_of(solo);
      const Dist d10 = dist_of(busy);
      t.row({backend_name(b), Table::num(d1.p50), Table::num(d10.p50),
             Table::num(d10.p99)});
    }
    t.print();
  }
  std::puts(
      "expectation (Sec 3.1/5.2): Simurgh's stat latency sits well below "
      "every syscall-based FS, and its contended p99 stays flat where "
      "shared locks inflate the kernel FSs'");
  return 0;
}
