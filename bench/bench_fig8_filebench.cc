// Fig. 8 reproduction: Filebench throughput for the four Table 2 workloads
// across all file systems.
//
// Paper shapes: varmail — Simurgh 1.7x NOVA, EXT4-DAX poor (small files);
// webserver — all similar (private reads dominate); webproxy — Simurgh
// +11% over NOVA, PMFS poor (unsorted dirent list hurts unlink);
// fileserver — NOVA ≈ Simurgh (reads dominate).
#include <cstdio>

#include "common/table.h"
#include "harness/runner.h"
#include "workloads/filebench.h"

using namespace simurgh;
using namespace simurgh::bench;

int main() {
  const double scale = bench_scale();

  // Table 2 (inputs).
  Table t2("Table 2 — Filebench workload settings (paper defaults)");
  t2.header({"Workload", "# Files", "Dir Width", "File Size", "# Threads"});
  t2.row({"Varmail", "1,000", "1,000,000", "128KB", "16"});
  t2.row({"Webserver", "1,000", "20", "128KB", "100"});
  t2.row({"Webproxy", "10,000", "1,000,000", "16KB", "100"});
  t2.row({"Fileserver", "10,000", "20", "128KB", "50"});
  t2.print();

  Table t("Fig 8 — Filebench throughput [ops/s]");
  std::vector<std::string> header{"backend"};
  const FilebenchKind kinds[] = {FilebenchKind::varmail,
                                 FilebenchKind::webserver,
                                 FilebenchKind::webproxy,
                                 FilebenchKind::fileserver};
  for (auto k : kinds) header.push_back(filebench_name(k));
  t.header(std::move(header));

  for (Backend b : all_backends()) {
    std::vector<std::string> row{backend_name(b)};
    for (auto k : kinds) {
      sim::SimWorld world;
      auto fs = make_backend(b, world);
      FilebenchConfig cfg;
      cfg.kind = k;
      cfg.scale = 0.08 * scale;
      cfg.flows_per_thread =
          static_cast<std::uint64_t>(40 * scale);
      auto r = run_filebench(*fs, cfg);
      row.push_back(Table::num(r.ops_per_sec));
    }
    t.row(std::move(row));
  }
  t.print();
  std::puts(
      "paper: varmail Simurgh=1.7x NOVA; webserver ~equal; webproxy "
      "Simurgh=+11% vs NOVA, PMFS poor; fileserver NOVA~=Simurgh");
  return 0;
}
