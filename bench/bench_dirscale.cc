// Giant-directory scaling microbenchmark: lookup+insert throughput in ONE
// directory swept from 10^3 to 10^6 entries, with the bucketed hash-block
// fan-out (DESIGN.md §10) as the A/B arm — split (default policy) vs
// pre-split (split disabled, the single-chain layout every directory had
// before the fan-out).  Entries are hard links to one seed file so the
// sweep measures directory-chain cost, not inode/data allocation.
//
// Lookups run with the DRAM path-lookup cache disabled: the cache would
// absorb repeated stats of a small working set and hide exactly the
// per-chain probe cost this bench exists to measure (the cache's own value
// is bench_path_lookup's subject).  Inserts keep the cache on — their
// directory cost (slot-probe across the governing chain) dominates either
// way.
//
// Like bench_multimount, every point runs `reps` interleaved repetitions
// and the headline gates judge the MEDIAN per-rep ratio (both arms of a
// rep run adjacent in time, so background noise mostly cancels).  A
// second section drives a thread sweep of mixed create/stat/unlink churn
// against the SAME split directory; on this host the parallel ceiling is
// min(threads, n_cpus), so that gate only rejects collapse (>=0.5x).
// A third section pins per-bucket epoch selectivity via FsStat: post-split
// inserts must bump only bucket-scoped epochs, never the whole directory.
// Writes BENCH_dirscale.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_env.h"
#include "core/dir_block.h"
#include "core/fs.h"

using namespace simurgh;

namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             Clock::now() - t0)
      .count();
}

std::string ename(std::uint64_t i) { return "e" + std::to_string(i); }

struct ArmSample {
  double insert_ops_per_sec = 0.0;
  double lookup_ops_per_sec = 0.0;
  double combined_ops_per_sec = 0.0;  // (inserts+lookups) / total time
  std::uint64_t chain_blocks = 0;
  std::uint64_t depth = 0;
};

// Builds a directory of `n` link entries under one arm and measures the
// build (insert) and `lookups` random stats (lookup) phases.
ArmSample run_arm(std::uint64_t n, std::uint64_t lookups, bool split) {
  nvmm::Device dev(n >= 500'000 ? (1ull << 30) : (256ull << 20));
  nvmm::Device shm(16ull << 20);
  auto fs = core::FileSystem::format(dev, shm);
  // The default policy is the split arm; bucket_bits == 0 restores the
  // pre-fan-out single-chain layout.
  if (!split) fs->dirops().set_split_params(4, 0);
  auto p = fs->open_process(1000, 1000);
  SIMURGH_CHECK(p->mkdir("/d").is_ok());
  {
    auto fd = p->open("/d/seed", core::kOpenCreate | core::kOpenWrite);
    SIMURGH_CHECK(fd.is_ok());
    SIMURGH_CHECK(p->close(*fd).is_ok());
  }

  ArmSample s;
  const auto t_ins = Clock::now();
  for (std::uint64_t i = 0; i < n; ++i)
    SIMURGH_CHECK(p->link("/d/seed", "/d/" + ename(i)).is_ok());
  const double ins_secs = secs_since(t_ins);
  s.insert_ops_per_sec = static_cast<double>(n) / ins_secs;

  fs->set_lookup_cache_enabled(false);
  std::mt19937_64 rng(0x5172'6768ull ^ n ^ (split ? 1 : 0));
  std::uniform_int_distribution<std::uint64_t> pick(0, n - 1);
  const auto t_lk = Clock::now();
  for (std::uint64_t i = 0; i < lookups; ++i)
    SIMURGH_CHECK(p->stat("/d/" + ename(pick(rng))).is_ok());
  const double lk_secs = secs_since(t_lk);
  s.lookup_ops_per_sec = static_cast<double>(lookups) / lk_secs;
  fs->set_lookup_cache_enabled(true);

  s.combined_ops_per_sec =
      static_cast<double>(n + lookups) / (ins_secs + lk_secs);
  core::Inode* d = fs->inode_at(p->stat("/d")->inode);
  s.chain_blocks = fs->dirops().chain_length(*d);
  s.depth = fs->dirops().dir_depth(*d);
  return s;
}

// Thread sweep: aggregate mixed create/stat/unlink churn in one shared
// split directory pre-populated with `base` entries.
double run_threads(unsigned n_threads, std::uint64_t base, int iters) {
  nvmm::Device dev(256ull << 20);
  nvmm::Device shm(16ull << 20);
  auto fs = core::FileSystem::format(dev, shm);
  auto p = fs->open_process(1000, 1000);
  SIMURGH_CHECK(p->mkdir("/d").is_ok());
  {
    auto fd = p->open("/d/seed", core::kOpenCreate | core::kOpenWrite);
    SIMURGH_CHECK(fd.is_ok());
    SIMURGH_CHECK(p->close(*fd).is_ok());
  }
  for (std::uint64_t i = 0; i < base; ++i)
    SIMURGH_CHECK(p->link("/d/seed", "/d/" + ename(i)).is_ok());

  std::vector<std::thread> threads;
  std::vector<std::uint64_t> ops(n_threads, 0);
  const auto t0 = Clock::now();
  for (unsigned t = 0; t < n_threads; ++t)
    threads.emplace_back([&, t] {
      auto proc = fs->open_process(1000, 1000);
      const std::string mine = "/d/w" + std::to_string(t) + "_";
      for (int i = 0; i < iters; ++i) {
        const std::string f = mine + std::to_string(i % 61);
        auto fd = proc->open(f, core::kOpenCreate | core::kOpenWrite);
        SIMURGH_CHECK(fd.is_ok());
        SIMURGH_CHECK(proc->close(*fd).is_ok());
        SIMURGH_CHECK(
            proc->stat("/d/" + ename((t * 2654435761u + i) % base)).is_ok());
        SIMURGH_CHECK(proc->unlink(f).is_ok());
        ops[t] += 3;
      }
    });
  for (auto& th : threads) th.join();
  const double secs = secs_since(t0);
  std::uint64_t total = 0;
  for (std::uint64_t o : ops) total += o;
  return static_cast<double>(total) / secs;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct EntryPoint {
  std::uint64_t entries = 0;
  ArmSample split, presplit;       // median rep (by combined rate)
  double speedup_insert = 0.0;     // median per-rep ratio
  double speedup_lookup = 0.0;
  double speedup_combined = 0.0;
};

ArmSample median_sample(const std::vector<ArmSample>& reps) {
  std::vector<double> rates;
  for (const ArmSample& s : reps) rates.push_back(s.combined_ops_per_sec);
  const double med = median(rates);
  for (const ArmSample& s : reps)
    if (s.combined_ops_per_sec == med) return s;
  return reps.front();
}

}  // namespace

int main() {
  const char* smoke_env = std::getenv("SIMURGH_BENCH_SMOKE");
  const bool smoke =
      smoke_env != nullptr && smoke_env[0] != '\0' && smoke_env[0] != '0';
  const int reps = smoke ? 1 : 3;
  const std::vector<std::uint64_t> entry_sweep =
      smoke ? std::vector<std::uint64_t>{1'000}
            : std::vector<std::uint64_t>{1'000, 10'000, 100'000, 1'000'000};
  const std::vector<unsigned> thread_sweep =
      smoke ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4};
  const unsigned n_cpus = std::max(1u, std::thread::hardware_concurrency());

  // ---- entry sweep, split vs pre-split, interleaved reps ----
  std::vector<EntryPoint> points;
  for (const std::uint64_t n : entry_sweep) {
    const std::uint64_t lookups = smoke ? 500 : std::min<std::uint64_t>(n, 20'000);
    std::vector<ArmSample> sp, pre;
    std::vector<double> r_ins, r_lk, r_comb;
    for (int r = 0; r < reps; ++r) {
      sp.push_back(run_arm(n, lookups, /*split=*/true));
      pre.push_back(run_arm(n, lookups, /*split=*/false));
      r_ins.push_back(sp.back().insert_ops_per_sec /
                      pre.back().insert_ops_per_sec);
      r_lk.push_back(sp.back().lookup_ops_per_sec /
                     pre.back().lookup_ops_per_sec);
      r_comb.push_back(sp.back().combined_ops_per_sec /
                       pre.back().combined_ops_per_sec);
    }
    EntryPoint pt;
    pt.entries = n;
    pt.split = median_sample(sp);
    pt.presplit = median_sample(pre);
    pt.speedup_insert = median(r_ins);
    pt.speedup_lookup = median(r_lk);
    pt.speedup_combined = median(r_comb);
    points.push_back(pt);
    std::printf(
        "%8llu entries: split %8.0f ins/s %8.0f lk/s (depth %llu, %llu "
        "blocks) | pre-split %8.0f ins/s %8.0f lk/s (%llu blocks) | "
        "speedup ins %.1fx lk %.1fx combined %.1fx\n",
        (unsigned long long)n, pt.split.insert_ops_per_sec,
        pt.split.lookup_ops_per_sec, (unsigned long long)pt.split.depth,
        (unsigned long long)pt.split.chain_blocks,
        pt.presplit.insert_ops_per_sec, pt.presplit.lookup_ops_per_sec,
        (unsigned long long)pt.presplit.chain_blocks, pt.speedup_insert,
        pt.speedup_lookup, pt.speedup_combined);
  }

  // ---- thread sweep over one shared split directory ----
  const std::uint64_t churn_base = smoke ? 1'000 : 100'000;
  const int churn_iters = smoke ? 50 : 5'000;
  std::vector<std::vector<double>> thread_samples(thread_sweep.size());
  for (int r = 0; r < reps; ++r)
    for (std::size_t i = 0; i < thread_sweep.size(); ++i)
      thread_samples[i].push_back(
          run_threads(thread_sweep[i], churn_base, churn_iters));
  std::vector<double> thread_medians;
  for (std::size_t i = 0; i < thread_sweep.size(); ++i) {
    thread_medians.push_back(median(thread_samples[i]));
    std::printf("%u thread%s: %8.0f ops/s aggregate median in one shared "
                "%llu-entry dir\n",
                thread_sweep[i], thread_sweep[i] == 1 ? " " : "s",
                thread_medians[i], (unsigned long long)churn_base);
  }
  std::vector<double> collapse_ratios;
  for (int r = 0; r < reps; ++r)
    collapse_ratios.push_back(thread_samples.back()[r] /
                              thread_samples.front()[r]);
  const double no_collapse = median(collapse_ratios);

  // ---- per-bucket epoch selectivity ----
  std::uint64_t scoped_delta = 0, full_delta = 0;
  {
    nvmm::Device dev(256ull << 20);
    nvmm::Device shm(16ull << 20);
    auto fs = core::FileSystem::format(dev, shm);
    auto p = fs->open_process(1000, 1000);
    SIMURGH_CHECK(p->mkdir("/d").is_ok());
    auto fd = p->open("/d/seed", core::kOpenCreate | core::kOpenWrite);
    SIMURGH_CHECK(fd.is_ok());
    SIMURGH_CHECK(p->close(*fd).is_ok());
    for (std::uint64_t i = 0; i < 5'000; ++i)
      SIMURGH_CHECK(p->link("/d/seed", "/d/" + ename(i)).is_ok());
    SIMURGH_CHECK(fs->dirops().dir_depth(
                      *fs->inode_at(p->stat("/d")->inode)) > 0);
    const core::FsStat before = fs->fsstat();
    for (std::uint64_t i = 0; i < 1'000; ++i)
      SIMURGH_CHECK(p->link("/d/seed", "/d/post_" + std::to_string(i)).is_ok());
    const core::FsStat after = fs->fsstat();
    scoped_delta = after.dir_epoch_bumps_scoped - before.dir_epoch_bumps_scoped;
    full_delta = after.dir_epoch_bumps_full - before.dir_epoch_bumps_full;
  }
  std::printf("epoch selectivity: 1000 post-split inserts -> %llu "
              "bucket-scoped bumps, %llu whole-directory bumps\n",
              (unsigned long long)scoped_delta,
              (unsigned long long)full_delta);

  const double speedup_at_max = points.back().speedup_combined;
  const bool pass_speedup = smoke || speedup_at_max >= 10.0;
  const bool pass_no_collapse = no_collapse >= 0.5;
  const bool pass_epochs = scoped_delta >= 1'000 && full_delta == 0;
  std::printf("gates: %.1fx combined speedup at %llu entries (need >=10), "
              "%u-thread no-collapse %.2fx (need >=0.5), epoch selectivity "
              "%s — on %u cpu%s\n",
              speedup_at_max, (unsigned long long)entry_sweep.back(),
              thread_sweep.back(), no_collapse,
              pass_epochs ? "pass" : "FAIL", n_cpus, n_cpus == 1 ? "" : "s");

  std::FILE* out = std::fopen("BENCH_dirscale.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    bench_env_fields(out);
    std::fprintf(out,
                 "  \"bench\": \"dirscale\",\n"
                 "  \"workload\": \"N hard links into one directory, then "
                 "random uncached stats; split (bucketed fan-out, default "
                 "policy) vs pre-split (single chain) arms\",\n"
                 "  \"reps\": %d,\n"
                 "  \"n_cpus\": %u,\n"
                 "  \"entry_points\": [\n",
                 reps, n_cpus);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const EntryPoint& pt = points[i];
      std::fprintf(
          out,
          "    {\"entries\": %llu,\n"
          "     \"split\": {\"insert_ops_per_sec\": %.0f, "
          "\"lookup_ops_per_sec\": %.0f, \"chain_blocks\": %llu, "
          "\"depth\": %llu},\n"
          "     \"presplit\": {\"insert_ops_per_sec\": %.0f, "
          "\"lookup_ops_per_sec\": %.0f, \"chain_blocks\": %llu},\n"
          "     \"speedup_insert_median_rep\": %.2f,\n"
          "     \"speedup_lookup_median_rep\": %.2f,\n"
          "     \"speedup_combined_median_rep\": %.2f}%s\n",
          (unsigned long long)pt.entries, pt.split.insert_ops_per_sec,
          pt.split.lookup_ops_per_sec,
          (unsigned long long)pt.split.chain_blocks,
          (unsigned long long)pt.split.depth, pt.presplit.insert_ops_per_sec,
          pt.presplit.lookup_ops_per_sec,
          (unsigned long long)pt.presplit.chain_blocks, pt.speedup_insert,
          pt.speedup_lookup, pt.speedup_combined,
          i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"thread_points\": [\n");
    for (std::size_t i = 0; i < thread_sweep.size(); ++i)
      std::fprintf(out,
                   "    {\"threads\": %u, \"ops_per_sec\": %.0f}%s\n",
                   thread_sweep[i], thread_medians[i],
                   i + 1 < thread_sweep.size() ? "," : "");
    std::fprintf(
        out,
        "  ],\n"
        "  \"thread_no_collapse_median_rep\": %.3f,\n"
        "  \"epoch_bumps_scoped_per_1000_postsplit_inserts\": %llu,\n"
        "  \"epoch_bumps_full_per_1000_postsplit_inserts\": %llu,\n"
        "  \"scaling_ceiling_note\": \"ideal thread scaling is "
        "min(threads, n_cpus)/1; on a 1-cpu host all thread counts "
        "time-slice one core and ~1.0x is the physical ceiling\",\n"
        "  \"pass_speedup_10x_at_max_entries\": %s,\n"
        "  \"pass_thread_no_collapse\": %s,\n"
        "  \"pass_epoch_selectivity\": %s\n"
        "}\n",
        no_collapse, (unsigned long long)scoped_delta,
        (unsigned long long)full_delta, pass_speedup ? "true" : "false",
        pass_no_collapse ? "true" : "false", pass_epochs ? "true" : "false");
    std::fclose(out);
  }
  // Smoke proves the binary end to end (every op SIMURGH_CHECKed); the
  // perf gates belong to the full run on an uninstrumented build.
  if (smoke) return 0;
  return (pass_speedup && pass_no_collapse && pass_epochs) ? 0 : 1;
}
