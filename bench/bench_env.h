// Host-environment stamp shared by every BENCH_*.json writer.
//
// Perf numbers are only comparable against numbers from the same class of
// machine, so each result file records where it was produced: the CPU count
// the C++ runtime sees (what the scaling arms actually had to work with)
// and the kernel/arch triple from uname.  Readers diffing two BENCH files
// can tell at a glance whether a regression is code or hardware.
#pragma once

#include <sys/utsname.h>

#include <cstdio>
#include <thread>

namespace simurgh {

// Emits the environment stanza as comma-terminated JSON fields; callers
// place it right after the opening '{' of their result object.
inline void bench_env_fields(std::FILE* out) {
  utsname u{};
  const bool have = ::uname(&u) == 0;
  std::fprintf(out,
               "  \"hardware_concurrency\": %u,\n"
               "  \"host_sysname\": \"%s\",\n"
               "  \"host_release\": \"%s\",\n"
               "  \"host_machine\": \"%s\",\n",
               std::thread::hardware_concurrency(),
               have ? u.sysname : "unknown", have ? u.release : "unknown",
               have ? u.machine : "unknown");
}

}  // namespace simurgh
