// Fig. 9 reproduction: YCSB throughput over the minikv (LevelDB-shaped)
// store, normalized to SplitFS as the paper does.
//
// Paper shapes: Simurgh highest in every workload; largest gap on RunA
// (+36% over SplitFS, highest update ratio); SplitFS strong (append-
// optimized) but behind Simurgh even on the append-heavy load phases.
#include <cstdio>

#include "common/table.h"
#include "harness/runner.h"
#include "workloads/ycsb.h"

using namespace simurgh;
using namespace simurgh::bench;

int main() {
  const double scale = bench_scale();
  const YcsbWorkload workloads[] = {
      YcsbWorkload::load_a, YcsbWorkload::run_a, YcsbWorkload::run_b,
      YcsbWorkload::run_c,  YcsbWorkload::run_d, YcsbWorkload::run_e,
      YcsbWorkload::load_e, YcsbWorkload::run_f};

  Table t("Fig 9 — YCSB throughput, normalized to SplitFS");
  std::vector<std::string> header{"backend"};
  for (auto w : workloads) header.push_back(ycsb_name(w));
  t.header(std::move(header));

  std::vector<std::vector<double>> values;
  std::vector<std::string> names;
  for (Backend b : all_backends()) {
    names.push_back(backend_name(b));
    std::vector<double> row;
    for (auto w : workloads) {
      sim::SimWorld world;
      auto fs = make_backend(b, world);
      YcsbConfig cfg;
      cfg.record_count = static_cast<std::uint64_t>(5000 * scale);
      cfg.ops = static_cast<std::uint64_t>(5000 * scale);
      row.push_back(run_ycsb(*fs, w, cfg).ops_per_sec);
    }
    values.push_back(std::move(row));
  }
  // Normalize to the SplitFS row.
  std::size_t splitfs_idx = 0;
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == "SplitFS") splitfs_idx = i;
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::vector<std::string> row{names[i]};
    for (std::size_t k = 0; k < values[i].size(); ++k) {
      const double base = values[splitfs_idx][k];
      row.push_back(base > 0 ? Table::num(values[i][k] / base) : "n/a");
    }
    t.row(std::move(row));
  }
  t.print();
  std::puts(
      "paper: Simurgh highest everywhere; RunA = 1.36x SplitFS (largest "
      "gap, highest update ratio)");
  return 0;
}
