// Data-path microbenchmark: real wall-clock cost of the hot file I/O loop
// through the public core::Process API — 4 KB appends (the Fig. 6 append
// shape), 4 KB overwrites, 4 KB reads of a deliberately fragmented file
// (spill-chain extent resolution), and a multi-thread append sweep (the
// Fig. 7 DWAL shape, private files).  Alongside time, the persist counters
// (nvmm::persist_stats) report flushed lines and fences per operation so the
// flush-coalescing work is observable, not just inferable.
//
// Run FROM THE REPO ROOT; writes BENCH_datapath.json to the cwd.  Runs
// under the SIMURGH_NVMM_OPTANE wall-clock timing model by default (see
// nvmm/persist.h) so fences cost modeled media time; set it to 0 for raw
// emulated-DRAM numbers.
//
// A/B against a pre-change build: run the same bench on the old tree, save
// its JSON, and point SIMURGH_BENCH_BASELINE_JSON at it — the new run then
// embeds the baseline numbers, computes speedups, and exits nonzero when the
// acceptance bars miss (>= 2x single-thread 4 KB append, fewer flushed
// lines per write, multi-thread scaling no worse).  Without a baseline the
// bench reports absolute numbers and exits 0.
//
// SIMURGH_BENCH_SMOKE=1 shrinks every loop to a handful of iterations and
// always exits 0 (the bench-smoke ctest label uses this to keep the binary
// from bit-rotting without paying bench runtime).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_env.h"
#include "core/fs.h"

using namespace simurgh;

namespace {

using Clock = std::chrono::steady_clock;

bool smoke_mode() {
  const char* s = std::getenv("SIMURGH_BENCH_SMOKE");
  return s != nullptr && std::string_view(s) != "0";
}

double ns_per_op(Clock::time_point a, Clock::time_point b, std::uint64_t n) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count() /
         static_cast<double>(n);
}

// Median across reps — the gating statistic every BENCH_*.json uses (a
// best-of-reps min rewards one lucky scheduling window; the median is what
// a re-run actually reproduces).
double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct PersistDelta {
  double lines_per_op = 0;
  double fences_per_op = 0;
};

// Runs fn() once and reports the persist-counter deltas per `ops`.
template <typename Fn>
PersistDelta count_persists(std::uint64_t ops, Fn&& fn) {
  auto& ps = nvmm::persist_stats();
  const std::uint64_t l0 = ps.flushed_lines.load(std::memory_order_relaxed);
  const std::uint64_t f0 = ps.fences.load(std::memory_order_relaxed);
  fn();
  PersistDelta d;
  d.lines_per_op =
      static_cast<double>(ps.flushed_lines.load(std::memory_order_relaxed) -
                          l0) /
      static_cast<double>(ops);
  d.fences_per_op =
      static_cast<double>(ps.fences.load(std::memory_order_relaxed) - f0) /
      static_cast<double>(ops);
  return d;
}

struct World {
  std::unique_ptr<nvmm::Device> dev, shm;
  std::unique_ptr<core::FileSystem> fs;
  std::unique_ptr<core::Process> proc;

  World() {
    dev = std::make_unique<nvmm::Device>(768ull << 20);
    shm = std::make_unique<nvmm::Device>(16ull << 20);
    fs = core::FileSystem::format(*dev, *shm);
    proc = fs->open_process(1000, 1000);
  }
};

// One rep of the single-thread 4 KB append loop on a fresh file.
double run_append(core::Process& p, const std::string& path,
                  const char* block, std::uint64_t ops) {
  auto fd = p.open(path, core::kOpenCreate | core::kOpenWrite |
                             core::kOpenAppend);
  SIMURGH_CHECK(fd.is_ok());
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i)
    SIMURGH_CHECK(p.write(*fd, block, 4096).is_ok());
  const auto t1 = Clock::now();
  SIMURGH_CHECK(p.close(*fd).is_ok());
  SIMURGH_CHECK(p.unlink(path).is_ok());
  return ns_per_op(t0, t1, ops);
}

// One rep of sequential 4 KB overwrites of a preallocated file.
double run_overwrite(core::Process& p, int fd, const char* block,
                     std::uint64_t file_blocks, std::uint64_t ops) {
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i)
    SIMURGH_CHECK(
        p.pwrite(fd, block, 4096, (i % file_blocks) * 4096).is_ok());
  return ns_per_op(t0, Clock::now(), ops);
}

// One rep of sequential 4 KB reads.
double run_read(core::Process& p, int fd, char* buf,
                std::uint64_t file_blocks, std::uint64_t ops) {
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i)
    SIMURGH_CHECK(p.pread(fd, buf, 4096, (i % file_blocks) * 4096).is_ok());
  return ns_per_op(t0, Clock::now(), ops);
}

// Multi-thread append: T threads, private files, `ops` appends each.
// Returns aggregate ns per op (wall time * threads / total ops would hide
// contention; wall/op_total is the throughput view the paper plots).
double run_append_mt(core::FileSystem& fs, int threads, std::uint64_t ops,
                     const char* block) {
  std::vector<std::unique_ptr<core::Process>> procs;
  std::vector<int> fds(threads);
  for (int t = 0; t < threads; ++t) {
    procs.push_back(fs.open_process(1000, 1000));
    const std::string path = "/mt" + std::to_string(t);
    auto fd = procs[t]->open(path, core::kOpenCreate | core::kOpenWrite |
                                       core::kOpenAppend);
    SIMURGH_CHECK(fd.is_ok());
    fds[t] = *fd;
  }
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> ts;
  const auto worker = [&](int t) {
    ready.fetch_add(1);
    while (!go.load(std::memory_order_acquire)) {
    }
    for (std::uint64_t i = 0; i < ops; ++i)
      SIMURGH_CHECK(procs[t]->write(fds[t], block, 4096).is_ok());
  };
  for (int t = 0; t < threads; ++t) ts.emplace_back(worker, t);
  while (ready.load() != threads) {
  }
  const auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : ts) th.join();
  const auto t1 = Clock::now();
  for (int t = 0; t < threads; ++t) {
    SIMURGH_CHECK(procs[t]->close(fds[t]).is_ok());
    SIMURGH_CHECK(procs[t]->unlink("/mt" + std::to_string(t)).is_ok());
  }
  return ns_per_op(t0, t1, ops * static_cast<std::uint64_t>(threads));
}

// Minimal flat-JSON number scraper for the baseline file: finds
// "key": <number> and returns the number, or nan.
double json_number(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t k = text.find(needle);
  if (k == std::string::npos) return std::nan("");
  const std::size_t colon = text.find(':', k);
  if (colon == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

}  // namespace

int main() {
  // Same modeled testbed as bench_writebehind (persist.h): fences pay
  // Optane-shaped media latency/bandwidth, the device is prefaulted like a
  // DAX mapping.  Keeps this bench's strict numbers comparable with the
  // write-behind bench's strict arm.  SIMURGH_NVMM_OPTANE=0 overrides.
  setenv("SIMURGH_NVMM_OPTANE", "1", 0);
  const bool smoke = smoke_mode();
  const std::uint64_t ops = smoke ? 64 : 8192;
  const std::uint64_t mt_ops = smoke ? 64 : 2048;
  const int reps = smoke ? 1 : 5;
  const std::vector<int> mt_threads = smoke ? std::vector<int>{1, 2}
                                            : std::vector<int>{1, 2, 4, 8};

  std::vector<char> block(4096, 'x');
  std::vector<char> rbuf(4096);

  World w;
  core::Process& p = *w.proc;

  // --- single-thread 4 KB append (fresh file per rep, median-of-reps) ---
  std::vector<double> append_reps;
  for (int r = 0; r < reps; ++r)
    append_reps.push_back(run_append(p, "/app", block.data(), ops));
  const double append_ns = median(append_reps);
  const PersistDelta append_pd = count_persists(
      ops, [&] { run_append(p, "/app", block.data(), ops); });

  // --- single-thread 4 KB overwrite of a 32 MB file ---
  const std::uint64_t file_blocks = smoke ? 8 : 8192;
  auto ofd = p.open("/ovw", core::kOpenCreate | core::kOpenWrite |
                                core::kOpenRead);
  SIMURGH_CHECK(ofd.is_ok());
  for (std::uint64_t b = 0; b < file_blocks; ++b)
    SIMURGH_CHECK(p.pwrite(*ofd, block.data(), 4096, b * 4096).is_ok());
  std::vector<double> ovw_reps;
  for (int r = 0; r < reps; ++r)
    ovw_reps.push_back(run_overwrite(p, *ofd, block.data(), file_blocks, ops));
  const double ovw_ns = median(ovw_reps);
  const PersistDelta ovw_pd = count_persists(ops, [&] {
    run_overwrite(p, *ofd, block.data(), file_blocks, ops);
  });

  // --- sequential 4 KB read of that (contiguous) file ---
  std::vector<double> read_seq_reps;
  for (int r = 0; r < reps; ++r)
    read_seq_reps.push_back(run_read(p, *ofd, rbuf.data(), file_blocks, ops));
  const double read_seq_ns = median(read_seq_reps);

  // --- fragmented-file read: interleave 1-block appends to two files so
  // their extents alternate and the extent map degenerates to one extent
  // per block (a long spill chain) ---
  const std::uint64_t frag_blocks = smoke ? 16 : 2048;
  auto fa = p.open("/fragA", core::kOpenCreate | core::kOpenWrite |
                                 core::kOpenRead | core::kOpenAppend);
  auto fb = p.open("/fragB", core::kOpenCreate | core::kOpenWrite |
                                 core::kOpenAppend);
  SIMURGH_CHECK(fa.is_ok());
  SIMURGH_CHECK(fb.is_ok());
  for (std::uint64_t b = 0; b < frag_blocks; ++b) {
    SIMURGH_CHECK(p.write(*fa, block.data(), 4096).is_ok());
    SIMURGH_CHECK(p.write(*fb, block.data(), 4096).is_ok());
  }
  std::vector<double> read_frag_reps;
  for (int r = 0; r < reps; ++r)
    read_frag_reps.push_back(run_read(p, *fa, rbuf.data(), frag_blocks, ops));
  const double read_frag_ns = median(read_frag_reps);

  // --- multi-thread append sweep ---
  std::vector<double> mt_ns;
  for (int t : mt_threads) {
    std::vector<double> mt_reps;
    for (int r = 0; r < std::max(1, reps - 2); ++r)
      mt_reps.push_back(run_append_mt(*w.fs, t, mt_ops, block.data()));
    mt_ns.push_back(median(mt_reps));
  }

  std::printf("4KB append  (1 thread):  %8.0f ns/op  (%.1f lines, %.1f "
              "fences per op)\n",
              append_ns, append_pd.lines_per_op, append_pd.fences_per_op);
  std::printf("4KB ovwrite (1 thread):  %8.0f ns/op  (%.1f lines, %.1f "
              "fences per op)\n",
              ovw_ns, ovw_pd.lines_per_op, ovw_pd.fences_per_op);
  std::printf("4KB read    seq:         %8.0f ns/op\n", read_seq_ns);
  std::printf("4KB read    fragmented:  %8.0f ns/op  (%llu extents)\n",
              read_frag_ns, (unsigned long long)frag_blocks);
  for (std::size_t i = 0; i < mt_threads.size(); ++i)
    std::printf("4KB append  (%d threads): %8.0f ns/op aggregate (%.2f "
                "Mops/s)\n",
                mt_threads[i], mt_ns[i], 1000.0 / mt_ns[i]);

  // --- baseline comparison ---
  double base_append = std::nan(""), base_lines = std::nan("");
  double base_mt_last = std::nan("");
  bool have_baseline = false;
  std::string baseline_json;
  if (const char* bp = std::getenv("SIMURGH_BENCH_BASELINE_JSON")) {
    if (std::FILE* f = std::fopen(bp, "r")) {
      char chunk[4096];
      std::size_t got;
      while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        baseline_json.append(chunk, got);
      std::fclose(f);
      base_append = json_number(baseline_json, "append1_ns_per_op");
      base_lines = json_number(baseline_json, "append1_lines_per_op");
      const std::string mt_key =
          "append_mt_" + std::to_string(mt_threads.back()) + "_ns_per_op";
      base_mt_last = json_number(baseline_json, mt_key);
      have_baseline = base_append == base_append;  // not nan
    }
  }
  const double speedup = have_baseline ? base_append / append_ns : 0.0;
  const bool lines_reduced =
      have_baseline && append_pd.lines_per_op < base_lines;
  // Multi-thread bar: at the highest thread count the new code's aggregate
  // ns/op must not be worse than the old code's (scaling no worse).
  const bool mt_ok = !have_baseline || base_mt_last != base_mt_last ||
                     mt_ns.back() <= base_mt_last * 1.10;
  if (have_baseline) {
    std::printf("baseline append: %.0f ns/op -> speedup %.2fx  "
                "(bar >= 2x: %s)\n",
                base_append, speedup, speedup >= 2.0 ? "PASS" : "FAIL");
    std::printf("baseline lines/op: %.1f -> %.1f  (reduced: %s)\n",
                base_lines, append_pd.lines_per_op,
                lines_reduced ? "PASS" : "FAIL");
    std::printf("baseline mt append (%d thr): %.0f -> %.0f ns/op  "
                "(no worse: %s)\n",
                mt_threads.back(), base_mt_last, mt_ns.back(),
                mt_ok ? "PASS" : "FAIL");
  }

  std::FILE* out = std::fopen("BENCH_datapath.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    bench_env_fields(out);
    std::fprintf(out,
                 "  \"bench\": \"data_path\",\n"
                 "  \"block_bytes\": 4096,\n"
                 "  \"ops\": %llu,\n"
                 "  \"append1_ns_per_op\": %.1f,\n"
                 "  \"append1_lines_per_op\": %.2f,\n"
                 "  \"append1_fences_per_op\": %.2f,\n"
                 "  \"overwrite1_ns_per_op\": %.1f,\n"
                 "  \"overwrite1_lines_per_op\": %.2f,\n"
                 "  \"overwrite1_fences_per_op\": %.2f,\n"
                 "  \"read_seq_ns_per_op\": %.1f,\n"
                 "  \"read_frag_ns_per_op\": %.1f,\n"
                 "  \"read_frag_extents\": %llu,\n",
                 (unsigned long long)ops, append_ns, append_pd.lines_per_op,
                 append_pd.fences_per_op, ovw_ns, ovw_pd.lines_per_op,
                 ovw_pd.fences_per_op, read_seq_ns, read_frag_ns,
                 (unsigned long long)frag_blocks);
    for (std::size_t i = 0; i < mt_threads.size(); ++i)
      std::fprintf(out, "  \"append_mt_%d_ns_per_op\": %.1f,\n",
                   mt_threads[i], mt_ns[i]);
    if (have_baseline)
      std::fprintf(out,
                   "  \"baseline_append1_ns_per_op\": %.1f,\n"
                   "  \"baseline_append1_lines_per_op\": %.2f,\n"
                   "  \"baseline_append_mt_%d_ns_per_op\": %.1f,\n"
                   "  \"append1_speedup\": %.2f,\n"
                   "  \"pass_speedup_2x\": %s,\n"
                   "  \"pass_lines_reduced\": %s,\n"
                   "  \"pass_mt_no_worse\": %s,\n",
                   base_append, base_lines, mt_threads.back(), base_mt_last,
                   speedup, speedup >= 2.0 ? "true" : "false",
                   lines_reduced ? "true" : "false",
                   mt_ok ? "true" : "false");
    std::fprintf(out, "  \"smoke\": %s\n}\n", smoke ? "true" : "false");
    std::fclose(out);
  }
  if (smoke || !have_baseline) return 0;
  return speedup >= 2.0 && lines_reduced && mt_ok ? 0 : 1;
}
