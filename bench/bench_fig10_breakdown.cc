// Fig. 10 reproduction: YCSB execution-time breakdown for Simurgh — the
// paper's point is that Simurgh's file-system share drops below ~10% of
// the application runtime, so further FS optimization cannot help much.
#include <cstdio>

#include "common/table.h"
#include "harness/runner.h"
#include "workloads/ycsb.h"

using namespace simurgh;
using namespace simurgh::bench;

namespace {
std::string pct(double f) { return Table::num(f * 100.0) + "%"; }
}  // namespace

int main() {
  const double scale = bench_scale();
  const YcsbWorkload workloads[] = {
      YcsbWorkload::load_a, YcsbWorkload::run_a, YcsbWorkload::run_b,
      YcsbWorkload::run_c,  YcsbWorkload::run_d, YcsbWorkload::run_e,
      YcsbWorkload::load_e, YcsbWorkload::run_f};

  Table t("Fig 10 — YCSB execution-time breakdown for Simurgh "
          "[paper: FS share < ~10%]");
  t.header({"workload", "application", "data copy", "file system"});
  for (auto w : workloads) {
    sim::SimWorld world;
    auto fs = make_backend(Backend::simurgh, world);
    YcsbConfig cfg;
    cfg.record_count = static_cast<std::uint64_t>(5000 * scale);
    cfg.ops = static_cast<std::uint64_t>(5000 * scale);
    auto r = run_ycsb(*fs, w, cfg);
    t.row({ycsb_name(w), pct(r.frac_app), pct(r.frac_copy), pct(r.frac_fs)});
  }
  t.print();
  return 0;
}
