// Fig. 12 reproduction: git add / commit / reset over the synthetic Linux
// tree across all file systems.
//
// Paper shapes: add and reset are application-dominated (all FSs similar);
// commit retrieves the metadata of every tracked file, where Simurgh is
// +48% over PMFS (the second-fastest single-threaded FS here).
#include <cstdio>

#include "common/table.h"
#include "harness/runner.h"
#include "workloads/gitsim.h"

using namespace simurgh;
using namespace simurgh::bench;

int main() {
  const double scale = bench_scale();
  Table t("Fig 12 — git throughput [files/s]");
  t.header({"backend", "add", "commit", "reset"});
  for (Backend b : all_backends()) {
    sim::SimWorld world;
    auto fs = make_backend(b, world);
    SrcTreeConfig tree;
    tree.scale = 0.015 * scale;
    auto r = run_git(*fs, tree);
    t.row({backend_name(b), Table::num(r.add_files_per_sec),
           Table::num(r.commit_files_per_sec),
           Table::num(r.reset_files_per_sec)});
  }
  t.print();
  std::puts(
      "paper: add/reset ~equal across FSs; commit Simurgh = +48% vs PMFS");
  return 0;
}
